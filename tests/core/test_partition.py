"""Tests for the even-split partitioner (matching + tracing, Thm 1 proof).

The load-balance invariant is the crux of the whole paper's scheduling
result, so it gets the heaviest property-based coverage in the suite:
for a same-LCA same-direction group, *every channel's* load must split
to within one message.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FatTree, MessageSet, channel_loads, even_split, even_split_all
from repro.core.partition import (
    even_split_indices,
    group_indices,
    message_group_keys,
)


def make_crossing_group(n, srcs, dsts):
    """A group of messages from left half to right half of an n-leaf tree."""
    return MessageSet([s % (n // 2) for s in srcs],
                      [n // 2 + (d % (n // 2)) for d in dsts], n)


def assert_even_on_all_channels(ft, whole, part_a, part_b):
    la = channel_loads(ft, part_a)
    lb = channel_loads(ft, part_b)
    lw = channel_loads(ft, whole)
    for k in range(1, ft.depth + 1):
        assert np.array_equal(la.up[k] + lb.up[k], lw.up[k])
        assert np.abs(la.up[k] - lb.up[k]).max(initial=0) <= 1, f"up level {k}"
        assert np.abs(la.down[k] - lb.down[k]).max(initial=0) <= 1, f"down level {k}"


class TestGroupKeys:
    def test_self_messages_get_key_minus_one(self):
        m = MessageSet([3, 0], [3, 1], 8)
        keys, _ = message_group_keys(m, 3)
        assert keys[0] == -1 and keys[1] != -1

    def test_same_lca_same_direction_share_keys(self):
        m = MessageSet([0, 1, 4, 5], [6, 7, 2, 3], 8)
        keys, _ = message_group_keys(m, 3)
        assert keys[0] == keys[1]  # both L->R through the root
        assert keys[2] == keys[3]  # both R->L through the root
        assert keys[0] != keys[2]

    def test_different_lcas_differ(self):
        m = MessageSet([0, 0], [1, 2], 8)  # LCAs at levels 2 and 1
        keys, levels = message_group_keys(m, 3)
        assert keys[0] != keys[1]
        assert levels[0] == 2 and levels[1] == 1

    def test_group_indices_partition_everything_but_self(self):
        rng = np.random.default_rng(0)
        m = MessageSet(rng.integers(0, 32, 100), rng.integers(0, 32, 100), 32)
        groups = group_indices(m, 5)
        covered = np.sort(np.concatenate(list(groups.values())))
        not_self = np.flatnonzero(m.src != m.dst)
        assert np.array_equal(covered, not_self)

    def test_group_indices_empty(self):
        assert group_indices(MessageSet.empty(8), 3) == {}


class TestEvenSplitValidation:
    def test_rejects_mixed_lca(self):
        m = MessageSet([0, 0], [4, 1], 8)
        with pytest.raises(ValueError):
            even_split(FatTree(8), m)

    def test_rejects_mixed_direction(self):
        m = MessageSet([0, 4], [4, 0], 8)
        with pytest.raises(ValueError):
            even_split(FatTree(8), m)

    def test_rejects_self_messages(self):
        m = MessageSet([0, 0], [0, 0], 8)
        with pytest.raises(ValueError):
            even_split(FatTree(8), m)

    def test_singleton_splits_to_one_and_zero(self):
        m = MessageSet([0], [4], 8)
        a, b = even_split(FatTree(8), m)
        assert len(a) == 1 and len(b) == 0

    def test_empty_group(self):
        a, b = even_split_indices(
            MessageSet.empty(8), np.empty(0, dtype=np.int64), 3
        )
        assert a.size == 0 and b.size == 0


class TestEvenSplitBalance:
    def test_two_identical_messages_split(self):
        ft = FatTree(8)
        m = MessageSet([0, 0], [4, 4], 8)
        a, b = even_split(ft, m)
        assert len(a) == 1 and len(b) == 1

    def test_sizes_split_in_half(self):
        ft = FatTree(16)
        m = make_crossing_group(16, range(7), range(7))
        a, b = even_split(ft, m)
        assert {len(a), len(b)} == {3, 4}

    def test_concentrated_source(self):
        """All messages from one processor: its up channels must split."""
        ft = FatTree(16)
        m = MessageSet([0] * 10, [8 + (i % 8) for i in range(10)], 16)
        a, b = even_split(ft, m)
        assert_even_on_all_channels(ft, m, a, b)

    def test_concentrated_destination(self):
        ft = FatTree(16)
        m = MessageSet([i % 8 for i in range(10)], [8] * 10, 16)
        a, b = even_split(ft, m)
        assert_even_on_all_channels(ft, m, a, b)

    def test_deep_lca_group(self):
        """Group crossing a level-2 node of a 32-leaf tree."""
        ft = FatTree(32)
        # subtree leaves 8..15; left half 8..11, right half 12..15
        m = MessageSet([8, 9, 8, 10, 11], [12, 13, 14, 15, 12], 32)
        a, b = even_split(ft, m)
        assert_even_on_all_channels(ft, m, a, b)

    @settings(max_examples=80)
    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)),
            min_size=1,
            max_size=64,
        )
    )
    def test_even_split_property(self, pairs):
        """The paper's exact claim: for every channel c,
        load(Q_a, c) = ceil(load(Q, c)/2) and load(Q_b, c) = floor(...)."""
        ft = FatTree(32)
        m = make_crossing_group(32, [p[0] for p in pairs], [p[1] for p in pairs])
        a, b = even_split(ft, m)
        assert len(a) + len(b) == len(m)
        assert abs(len(a) - len(b)) <= 1
        assert_even_on_all_channels(ft, m, a, b)

    @settings(max_examples=40)
    @given(st.data())
    def test_even_split_at_every_lca_level(self, data):
        """Balance holds for groups at any depth, not just root-crossing."""
        depth = 5
        n = 1 << depth
        ft = FatTree(n)
        lca_level = data.draw(st.integers(0, depth - 1))
        lca_index = data.draw(st.integers(0, (1 << lca_level) - 1))
        span = 1 << (depth - lca_level - 1)
        left_lo = lca_index * 2 * span
        right_lo = left_lo + span
        k = data.draw(st.integers(1, 40))
        srcs = data.draw(
            st.lists(st.integers(0, span - 1), min_size=k, max_size=k)
        )
        dsts = data.draw(
            st.lists(st.integers(0, span - 1), min_size=k, max_size=k)
        )
        m = MessageSet(
            [left_lo + s for s in srcs], [right_lo + d for d in dsts], n
        )
        a, b = even_split(ft, m)
        assert_even_on_all_channels(ft, m, a, b)


class TestEvenSplitAll:
    def test_splits_mixed_traffic(self):
        ft = FatTree(32)
        rng = np.random.default_rng(5)
        m = MessageSet(rng.integers(0, 32, 300), rng.integers(0, 32, 300), 32)
        m = m.without_self_messages()
        a, b = even_split_all(ft, m)
        assert a.concat(b) == m

    def test_drops_self_messages(self):
        ft = FatTree(8)
        m = MessageSet([1, 2], [1, 5], 8)
        a, b = even_split_all(ft, m)
        assert len(a) + len(b) == 1

    @settings(max_examples=50)
    @given(
        st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=100)
    )
    def test_per_channel_error_bounded_by_group_count(self, pairs):
        """Splitting group-by-group bounds each channel's imbalance by the
        number of groups crossing it, which is at most its level <= lg n
        (the Corollary 2 error argument)."""
        ft = FatTree(32)
        m = MessageSet.from_pairs(pairs, 32).without_self_messages()
        a, b = even_split_all(ft, m)
        la, lb = channel_loads(ft, a), channel_loads(ft, b)
        for k in range(1, ft.depth + 1):
            assert np.abs(la.up[k] - lb.up[k]).max(initial=0) <= k
            assert np.abs(la.down[k] - lb.down[k]).max(initial=0) <= k
