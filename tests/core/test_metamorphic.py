"""Metamorphic properties of load factors and schedulers.

These tests check invariances the theory implies but no single direct
test would catch:

* swapping the two children of any tree node is an automorphism of the
  fat-tree, so it preserves load factors exactly;
* adding capacity can never increase the load factor;
* splitting a message set can never increase the per-part load factor;
* scheduling is invariant in *count bounds* under message duplication
  scaling (λ scales linearly).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExplicitCapacity,
    FatTree,
    MessageSet,
    ScaledCapacity,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
)


def subtree_swap(leaves: np.ndarray, depth: int, level: int, index: int) -> np.ndarray:
    """Relabel leaves by swapping the two children of node (level, index)."""
    shift = depth - level - 1
    mask = 1 << shift
    prefix = leaves >> (shift + 1)
    inside = prefix == index
    return np.where(inside, leaves ^ mask, leaves)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=80),
    st.integers(0, 4),
    st.integers(0, 1000),
)
def test_subtree_swap_preserves_load_factor(pairs, level, seed):
    """Tree automorphisms leave λ(M) unchanged."""
    depth = 5
    ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
    m = MessageSet.from_pairs(pairs, 32)
    index = seed % (1 << level)
    swapped = MessageSet(
        subtree_swap(m.src, depth, level, index),
        subtree_swap(m.dst, depth, level, index),
        32,
    )
    assert load_factor(ft, m) == pytest.approx(load_factor(ft, swapped))


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=80),
    st.integers(2, 5),
)
def test_more_capacity_never_hurts(pairs, factor):
    m = MessageSet.from_pairs(pairs, 32)
    base = FatTree(32, UniversalCapacity(32, 16, strict=False))
    fat = base.with_capacity(ScaledCapacity(base.capacity, lambda c: c * factor))
    assert load_factor(fat, m) <= load_factor(base, m)
    assert load_factor(fat, m) == pytest.approx(load_factor(base, m) / factor)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=80),
    st.integers(0, 2 ** 31 - 1),
)
def test_subset_load_factor_monotone(pairs, seed):
    ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
    m = MessageSet.from_pairs(pairs, 32)
    rng = np.random.default_rng(seed)
    mask = rng.random(len(m)) < 0.5
    assert load_factor(ft, m.take(mask)) <= load_factor(ft, m)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        min_size=1,
        max_size=30,
    ),
    st.integers(2, 4),
)
def test_duplication_scales_lambda_linearly(pairs, k):
    ft = FatTree(16, UniversalCapacity(16, 8, strict=False))
    m = MessageSet.from_pairs(pairs, 16)
    dup = MessageSet.from_pairs(pairs * k, 16)
    assert load_factor(ft, dup) == pytest.approx(k * load_factor(ft, m))


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=50),
    st.integers(0, 3),
    st.integers(0, 7),
)
def test_schedule_of_swapped_traffic_same_length_bounds(pairs, level, index_seed):
    """Scheduling a relabelled workload yields the same cycle count (the
    algorithm is structural, so automorphic inputs behave identically)."""
    depth = 4
    ft = FatTree(16, UniversalCapacity(16, 8, strict=False))
    m = MessageSet.from_pairs(pairs, 16)
    index = index_seed % (1 << level)
    swapped = MessageSet(
        subtree_swap(m.src, depth, level, index),
        subtree_swap(m.dst, depth, level, index),
        16,
    )
    d1 = schedule_theorem1(ft, m).num_cycles
    d2 = schedule_theorem1(ft, swapped).num_cycles
    assert d1 == d2


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_explicit_profile_dominance(data):
    """Channel-wise dominant capacity profiles give dominated λ."""
    depth = 4
    caps_lo = [data.draw(st.integers(1, 6)) for _ in range(depth + 1)]
    caps_hi = [c + data.draw(st.integers(0, 4)) for c in caps_lo]
    pairs = data.draw(
        st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40)
    )
    m = MessageSet.from_pairs(pairs, 16)
    lam_lo = load_factor(FatTree(16, ExplicitCapacity(caps_lo)), m)
    lam_hi = load_factor(FatTree(16, ExplicitCapacity(caps_hi)), m)
    assert lam_hi <= lam_lo + 1e-12
