"""Unit tests for MessageSet."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import MessageSet


class TestConstruction:
    def test_basic(self):
        m = MessageSet([0, 1, 2], [3, 2, 1], 4)
        assert len(m) == 3
        assert m.n == 4
        assert list(m) == [(0, 3), (1, 2), (2, 1)]

    def test_from_pairs(self):
        m = MessageSet.from_pairs([(0, 1), (1, 0)], 2)
        assert list(m) == [(0, 1), (1, 0)]

    def test_from_pairs_empty(self):
        m = MessageSet.from_pairs([], 8)
        assert len(m) == 0 and m.n == 8

    def test_empty(self):
        m = MessageSet.empty(16)
        assert len(m) == 0

    def test_from_permutation(self):
        m = MessageSet.from_permutation([2, 0, 1, 3])
        assert list(m) == [(0, 2), (1, 0), (2, 1), (3, 3)]

    def test_from_permutation_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            MessageSet.from_permutation([0, 0, 1, 2])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MessageSet([0], [4], 4)
        with pytest.raises(ValueError):
            MessageSet([-1], [0], 4)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            MessageSet([0, 1], [1], 4)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            MessageSet([], [], 0)

    def test_multiset_semantics_allowed(self):
        m = MessageSet([0, 0], [1, 1], 2)
        assert len(m) == 2
        assert m.counter()[(0, 1)] == 2


class TestImmutability:
    def test_arrays_not_writable(self):
        m = MessageSet([0], [1], 2)
        with pytest.raises(ValueError):
            m.src[0] = 1

    def test_attributes_frozen(self):
        m = MessageSet([0], [1], 2)
        with pytest.raises(AttributeError):
            m.n = 5

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(MessageSet([0], [1], 2))


class TestOperations:
    def test_take_mask(self):
        m = MessageSet([0, 1, 2, 3], [1, 2, 3, 0], 4)
        sub = m.take(m.src >= 2)
        assert list(sub) == [(2, 3), (3, 0)]

    def test_take_indices(self):
        m = MessageSet([0, 1, 2], [1, 2, 0], 3)
        sub = m.take(np.array([2, 0]))
        assert list(sub) == [(2, 0), (0, 1)]

    def test_concat(self):
        a = MessageSet([0], [1], 4)
        b = MessageSet([2], [3], 4)
        assert list(a.concat(b)) == [(0, 1), (2, 3)]

    def test_concat_rejects_different_n(self):
        with pytest.raises(ValueError):
            MessageSet([0], [1], 4).concat(MessageSet([0], [1], 8))

    def test_without_self_messages(self):
        m = MessageSet([0, 1, 2], [0, 2, 2], 4)
        assert list(m.without_self_messages()) == [(1, 2)]

    def test_equality_is_order_insensitive(self):
        a = MessageSet([0, 1], [1, 0], 2)
        b = MessageSet([1, 0], [0, 1], 2)
        assert a == b

    def test_equality_respects_multiplicity(self):
        a = MessageSet([0, 0], [1, 1], 2)
        b = MessageSet([0], [1], 2)
        assert a != b

    def test_repr(self):
        assert "n=4" in repr(MessageSet([0], [1], 4))


@given(
    st.lists(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=50)
)
def test_concat_take_roundtrip_property(pairs):
    """Splitting by any mask and concatenating preserves the multiset."""
    m = MessageSet.from_pairs(pairs, 16)
    mask = m.src % 2 == 0
    rejoined = m.take(mask).concat(m.take(~mask))
    assert rejoined == m
