"""Tests for the random-rank on-line router (§VI / ref [8] direction)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantCapacity,
    FatTree,
    MessageSet,
    UniversalCapacity,
    load_factor,
    online_cycle_bound,
    schedule_random_rank,
)
from repro.workloads import hotspot, random_permutation, uniform_random


class TestRandomRank:
    def test_valid_schedule(self):
        ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
        m = uniform_random(32, 300, seed=0)
        sched = schedule_random_rank(ft, m, seed=1)
        sched.validate(ft, m)

    def test_empty(self):
        sched = schedule_random_rank(FatTree(8), MessageSet.empty(8))
        assert sched.num_cycles == 0

    def test_self_messages_skipped(self):
        ft = FatTree(8)
        sched = schedule_random_rank(ft, MessageSet([1, 2], [1, 3], 8))
        assert sched.n_self_messages == 1
        assert sched.num_cycles == 1

    def test_permutation_one_cycle_on_full_tree(self):
        ft = FatTree(64)
        m = random_permutation(64, seed=2)
        sched = schedule_random_rank(ft, m, seed=0)
        assert sched.num_cycles == 1  # λ <= 1: nobody can lose

    def test_deterministic_given_seed(self):
        ft = FatTree(16)
        m = uniform_random(16, 80, seed=3)
        a = schedule_random_rank(ft, m, seed=7)
        b = schedule_random_rank(ft, m, seed=7)
        assert [list(c) for c in a] == [list(c) for c in b]

    def test_progress_guard(self):
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 20, [7] * 20, 8)
        sched = schedule_random_rank(ft, m)
        assert sched.num_cycles == 20  # serialised through the leaf wire

    def test_max_cycles(self):
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 20, [7] * 20, 8)
        with pytest.raises(RuntimeError):
            schedule_random_rank(ft, m, max_cycles=3)

    def test_mismatched_n(self):
        with pytest.raises(ValueError):
            schedule_random_rank(FatTree(8), MessageSet([0], [1], 16))

    def test_within_announced_bound(self):
        """The [8] shape: cycles = O(λ + lg n·lg lg n), sampled over
        seeds and workloads."""
        for n, seed in [(64, 0), (128, 1), (256, 2)]:
            ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
            for m in (
                uniform_random(n, 4 * n, seed=seed),
                hotspot(n, 2 * n, seed=seed),
            ):
                lam = load_factor(ft, m)
                sched = schedule_random_rank(ft, m, seed=seed)
                sched.validate(ft, m)
                assert sched.num_cycles <= online_cycle_bound(ft, lam)

    def test_beats_nothing_below_lower_bound(self):
        ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
        m = uniform_random(32, 400, seed=5)
        lam = load_factor(ft, m)
        sched = schedule_random_rank(ft, m, seed=5)
        assert sched.num_cycles >= math.ceil(lam)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=80),
    st.integers(0, 1000),
)
def test_random_rank_property(pairs, seed):
    ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
    m = MessageSet.from_pairs(pairs, 32)
    sched = schedule_random_rank(ft, m, seed=seed)
    sched.validate(ft, m)
