"""Tests for the random-rank on-line router (§VI / ref [8] direction)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantCapacity,
    DeliveryTimeout,
    FatTree,
    MessageSet,
    UniversalCapacity,
    load_factor,
    online_cycle_bound,
    schedule_random_rank,
)
from repro.core.online import _reference_schedule_random_rank
from repro.workloads import hotspot, random_permutation, uniform_random


class TestRandomRank:
    def test_valid_schedule(self):
        ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
        m = uniform_random(32, 300, seed=0)
        sched = schedule_random_rank(ft, m, seed=1)
        sched.validate(ft, m)

    def test_empty(self):
        sched = schedule_random_rank(FatTree(8), MessageSet.empty(8))
        assert sched.num_cycles == 0

    def test_self_messages_skipped(self):
        ft = FatTree(8)
        sched = schedule_random_rank(ft, MessageSet([1, 2], [1, 3], 8))
        assert sched.n_self_messages == 1
        assert sched.num_cycles == 1

    def test_permutation_one_cycle_on_full_tree(self):
        ft = FatTree(64)
        m = random_permutation(64, seed=2)
        sched = schedule_random_rank(ft, m, seed=0)
        assert sched.num_cycles == 1  # λ <= 1: nobody can lose

    def test_deterministic_given_seed(self):
        ft = FatTree(16)
        m = uniform_random(16, 80, seed=3)
        a = schedule_random_rank(ft, m, seed=7)
        b = schedule_random_rank(ft, m, seed=7)
        assert [list(c) for c in a] == [list(c) for c in b]

    def test_progress_guard(self):
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 20, [7] * 20, 8)
        sched = schedule_random_rank(ft, m)
        assert sched.num_cycles == 20  # serialised through the leaf wire

    def test_max_cycles(self):
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 20, [7] * 20, 8)
        with pytest.raises(RuntimeError):
            schedule_random_rank(ft, m, max_cycles=3)

    def test_mismatched_n(self):
        with pytest.raises(ValueError):
            schedule_random_rank(FatTree(8), MessageSet([0], [1], 16))

    def test_within_announced_bound(self):
        """The [8] shape: cycles = O(λ + lg n·lg lg n), sampled over
        seeds and workloads."""
        for n, seed in [(64, 0), (128, 1), (256, 2)]:
            ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
            for m in (
                uniform_random(n, 4 * n, seed=seed),
                hotspot(n, 2 * n, seed=seed),
            ):
                lam = load_factor(ft, m)
                sched = schedule_random_rank(ft, m, seed=seed)
                sched.validate(ft, m)
                assert sched.num_cycles <= online_cycle_bound(ft, lam)

    def test_backoff_livelock_raises_before_burning_budget(self):
        """Regression: with loss_rate > 0 and a large max_backoff, every
        pending message can back off past the remaining max_cycles
        headroom.  That livelock must raise DeliveryTimeout immediately
        (with the backoff histogram) instead of appending empty cycles
        until the budget runs out."""
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 2, [7] * 2, 8)
        for fn in (schedule_random_rank, _reference_schedule_random_rank):
            with pytest.raises(DeliveryTimeout) as exc:
                fn(ft, m, seed=1, loss_rate=0.97, max_backoff=4096, max_cycles=8)
            assert exc.value.cycles < 8  # raised early, not at the budget
            assert sum(exc.value.attempts.values()) == len(exc.value.undelivered)
            assert max(exc.value.attempts) >= 1  # histogram is populated

    def test_lossy_budget_exhaustion_carries_histogram(self):
        """The plain budget-exhaustion branch also reports the backoff
        (attempt-count) histogram."""
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0] * 12, [7] * 12, 8)
        with pytest.raises(DeliveryTimeout) as exc:
            schedule_random_rank(
                ft, m, seed=0, loss_rate=0.95, max_backoff=4096, max_cycles=12
            )
        assert exc.value.cycles == 12
        assert sum(exc.value.attempts.values()) == len(exc.value.undelivered)

    def test_no_progress_raises_delivery_timeout(self):
        """Regression: a cycle that cannot make progress (possible only on
        a pathological tree whose capacities are all zero while its
        routable mask claims otherwise) must raise DeliveryTimeout with
        the attempt histogram — it used to trip a bare AssertionError."""

        class LyingTree(FatTree):
            def chan_cap(self, level, index, direction):
                return 0

        ft = LyingTree(8, ConstantCapacity(3, 1))
        with pytest.raises(DeliveryTimeout) as exc:
            _reference_schedule_random_rank(ft, MessageSet([0], [7], 8))
        assert exc.value.attempts == {1: 1}

    def test_beats_nothing_below_lower_bound(self):
        ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
        m = uniform_random(32, 400, seed=5)
        lam = load_factor(ft, m)
        sched = schedule_random_rank(ft, m, seed=5)
        assert sched.num_cycles >= math.ceil(lam)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=80),
    st.integers(0, 1000),
)
def test_random_rank_property(pairs, seed):
    ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
    m = MessageSet.from_pairs(pairs, 32)
    sched = schedule_random_rank(ft, m, seed=seed)
    sched.validate(ft, m)
