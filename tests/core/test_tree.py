"""Unit tests for complete-binary-tree arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import tree


class TestPowersOfTwo:
    def test_is_power_of_two_accepts_powers(self):
        for k in range(20):
            assert tree.is_power_of_two(1 << k)

    def test_is_power_of_two_rejects_non_powers(self):
        for v in [0, -1, -2, 3, 5, 6, 7, 9, 12, 100, 1023]:
            assert not tree.is_power_of_two(v)

    def test_ilog2_exact(self):
        for k in range(20):
            assert tree.ilog2(1 << k) == k

    def test_ilog2_rejects_non_powers(self):
        with pytest.raises(ValueError):
            tree.ilog2(12)
        with pytest.raises(ValueError):
            tree.ilog2(0)

    def test_lg_matches_paper_footnote(self):
        # lg m = max(1, ceil(log2 m))
        assert tree.lg(1) == 1
        assert tree.lg(2) == 1
        assert tree.lg(3) == 2
        assert tree.lg(4) == 2
        assert tree.lg(5) == 3
        assert tree.lg(1024) == 10

    def test_lg_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            tree.lg(0)


class TestFlatIds:
    def test_num_nodes(self):
        assert tree.num_nodes(0) == 1
        assert tree.num_nodes(3) == 15

    def test_flat_roundtrip(self):
        for level in range(6):
            for index in range(1 << level):
                flat = tree.flat_id(level, index)
                assert tree.level_of_flat(flat) == level
                assert tree.index_of_flat(flat) == index

    def test_flat_ids_are_contiguous_bfs(self):
        flats = [
            tree.flat_id(level, index)
            for level in range(5)
            for index in range(1 << level)
        ]
        assert flats == list(range(tree.num_nodes(4)))

    def test_flat_id_validates(self):
        with pytest.raises(ValueError):
            tree.flat_id(2, 4)
        with pytest.raises(ValueError):
            tree.flat_id(-1, 0)


class TestNavigation:
    def test_parent_child_inverse(self):
        for level in range(1, 6):
            for index in range(1 << level):
                p = tree.parent(level, index)
                assert tree.left_child(*p) == (level, index & ~1)
                assert tree.right_child(*p) == (level, (index & ~1) | 1)

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            tree.parent(0, 0)

    def test_ancestor_at_level_scalar(self):
        depth = 4
        # leaf 13 = 0b1101: ancestors 13, 6, 3, 1, 0 going up
        assert [tree.ancestor_at_level(13, depth, l) for l in range(5)] == [
            0,
            1,
            3,
            6,
            13,
        ]

    def test_ancestor_at_level_vectorised(self):
        depth = 5
        leaves = np.arange(32)
        anc = tree.ancestor_at_level(leaves, depth, 2)
        assert anc.shape == (32,)
        assert list(anc[:8]) == [0] * 8
        assert list(anc[24:]) == [3] * 8


class TestLCA:
    def test_lca_of_identical_leaves_is_the_leaf(self):
        assert tree.lca_level(5, 5, 4) == 4
        assert tree.lca(5, 5, 4) == (4, 5)

    def test_lca_of_siblings(self):
        assert tree.lca(6, 7, 4) == (3, 3)

    def test_lca_of_extremes_is_root(self):
        depth = 6
        assert tree.lca(0, (1 << depth) - 1, depth) == (0, 0)

    def test_lca_is_symmetric(self):
        depth = 5
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b = rng.integers(0, 1 << depth, 2)
            assert tree.lca(int(a), int(b), depth) == tree.lca(int(b), int(a), depth)

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_lca_is_common_ancestor_property(self, a, b):
        depth = 8
        level, index = tree.lca(a, b, depth)
        assert tree.ancestor_at_level(a, depth, level) == index
        assert tree.ancestor_at_level(b, depth, level) == index
        # and it is the *least* one: one level down they differ (if a != b)
        if a != b:
            assert tree.ancestor_at_level(a, depth, level + 1) != tree.ancestor_at_level(
                b, depth, level + 1
            )


class TestSubtrees:
    def test_leaves_under_root_is_everything(self):
        assert list(tree.leaves_under(0, 0, 3)) == list(range(8))

    def test_leaves_under_leaf_is_singleton(self):
        assert list(tree.leaves_under(3, 5, 3)) == [5]

    def test_subtree_size(self):
        assert tree.subtree_size(0, 5) == 32
        assert tree.subtree_size(5, 5) == 1

    def test_path_to_root(self):
        path = tree.path_to_root(6, 3)
        assert path == [(3, 6), (2, 3), (1, 1), (0, 0)]

    def test_leaves_under_partitions_by_level(self):
        depth = 4
        for level in range(depth + 1):
            seen = []
            for index in range(1 << level):
                seen.extend(tree.leaves_under(level, index, depth))
            assert seen == list(range(1 << depth))
