"""Unit tests for capacity profiles (§IV definitions)."""

import math

import pytest

from repro.core import (
    ConstantCapacity,
    DoublingCapacity,
    ExplicitCapacity,
    ScaledCapacity,
    UniversalCapacity,
)


class TestUniversalCapacity:
    def test_root_capacity_is_w(self):
        for n, w in [(64, 16), (64, 64), (256, 64), (1024, 128)]:
            assert UniversalCapacity(n, w).cap(0) == w

    def test_leaf_capacity_is_one(self):
        # cap(lg n) = ceil(min(1, w/n^{2/3})) = 1 since w >= n^{2/3}
        for n, w in [(64, 16), (256, 64), (1024, 1024)]:
            prof = UniversalCapacity(n, w)
            assert prof.cap(prof.depth) == 1

    def test_doubling_regime_near_leaves(self):
        # With w = n the doubling branch wins everywhere: cap(k) = n/2^k.
        prof = UniversalCapacity(256, 256)
        for k in range(9):
            assert prof.cap(k) == 256 >> k

    def test_cuberoot4_regime_near_root(self):
        # For k < 3·lg(n/w) the branch w/4^{k/3} governs.
        n, w = 4096, 256  # 3·lg(16) = 12 = depth: root regime everywhere
        prof = UniversalCapacity(n, w)
        for k in range(prof.depth + 1):
            expected = math.ceil(w / 4 ** (k / 3) - 1e-9)
            assert prof.cap(k) == expected

    def test_regimes_meet_at_crossover(self):
        # At k* = 3·lg(n/w) both formulas give w^3/n^2.
        n, w = 4096, 1024
        kstar = 3 * int(math.log2(n / w))
        prof = UniversalCapacity(n, w)
        assert prof.cap(kstar) == w ** 3 // n ** 2
        assert prof.crossover_level == kstar

    def test_capacities_nonincreasing_down_the_tree(self):
        prof = UniversalCapacity(1024, 128)
        caps = prof.caps()
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_strict_rejects_small_w(self):
        with pytest.raises(ValueError):
            UniversalCapacity(4096, 64)  # 64^3 < 4096^2

    def test_relaxed_allows_small_w(self):
        prof = UniversalCapacity(4096, 64, strict=False)
        assert prof.cap(0) == 64

    def test_rejects_w_out_of_range(self):
        with pytest.raises(ValueError):
            UniversalCapacity(64, 65)
        with pytest.raises(ValueError):
            UniversalCapacity(64, 0)

    def test_rejects_non_power_of_two_n(self):
        with pytest.raises(ValueError):
            UniversalCapacity(100, 50)


class TestOtherProfiles:
    def test_constant(self):
        prof = ConstantCapacity(5, 3)
        assert prof.caps() == [3] * 6

    def test_constant_default_is_plain_tree(self):
        assert ConstantCapacity(4).caps() == [1] * 5

    def test_doubling_equals_universal_with_w_n(self):
        n = 512
        assert DoublingCapacity(n).caps() == UniversalCapacity(n, n).caps()

    def test_explicit(self):
        prof = ExplicitCapacity([8, 4, 2, 1])
        assert prof.depth == 3
        assert prof.cap(1) == 4

    def test_scaled(self):
        base = DoublingCapacity(16)
        prof = ScaledCapacity(base, lambda c: 2 * c)
        assert prof.caps() == [2 * c for c in base.caps()]

    def test_nonpositive_capacity_rejected(self):
        prof = ScaledCapacity(ConstantCapacity(3, 1), lambda c: c - 1)
        with pytest.raises(ValueError):
            prof.cap(0)

    def test_level_bounds_checked(self):
        prof = ConstantCapacity(3)
        with pytest.raises(ValueError):
            prof.cap(4)
        with pytest.raises(ValueError):
            prof.cap(-1)

    def test_cap_is_cached(self):
        calls = []

        class Probe(ConstantCapacity):
            def _raw_cap(self, level):
                calls.append(level)
                return 1

        prof = Probe(3)
        prof.cap(2)
        prof.cap(2)
        assert calls == [2]


class TestTaperedCapacity:
    """The oversubscription parameterisation modern fabrics quote."""

    def test_ratio_one_is_full_bandwidth(self):
        from repro.core import DoublingCapacity, TaperedCapacity

        assert TaperedCapacity(256, 1.0).caps() == DoublingCapacity(256).caps()

    def test_measured_oversubscription_matches_request(self):
        from repro.core import TaperedCapacity

        for r in (1.0, 2.0, 4.0, 8.0):
            prof = TaperedCapacity(1024, r)
            assert prof.oversubscription() == pytest.approx(r, rel=0.05)

    def test_leaf_cap_scales_everything(self):
        from repro.core import TaperedCapacity

        one = TaperedCapacity(64, 2.0, leaf_cap=1)
        four = TaperedCapacity(64, 2.0, leaf_cap=4)
        assert four.cap(one.depth) == 4
        assert four.cap(0) == pytest.approx(4 * one.cap(0), rel=0.05)

    def test_capacities_monotone_up_the_tree(self):
        from repro.core import TaperedCapacity

        caps = TaperedCapacity(512, 4.0).caps()
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_validation(self):
        from repro.core import TaperedCapacity

        with pytest.raises(ValueError):
            TaperedCapacity(64, 0.5)
        with pytest.raises(ValueError):
            TaperedCapacity(64, 2.0, leaf_cap=0)

    def test_taper_raises_load_factor_on_global_traffic(self):
        from repro.core import FatTree, TaperedCapacity, load_factor
        from repro.workloads import butterfly_exchange

        n = 256
        m = butterfly_exchange(n, 7)  # every message crosses the root
        lams = [
            load_factor(FatTree(n, TaperedCapacity(n, r)), m)
            for r in (1.0, 2.0, 4.0)
        ]
        assert lams == sorted(lams)
        assert lams[-1] > lams[0]
