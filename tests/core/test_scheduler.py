"""Tests for the Theorem 1 scheduler.

Theorem 1: any message set M on a fat-tree of n processors has an
off-line schedule with d = O(λ(M)·lg n) delivery cycles; this
implementation achieves d <= 2·ceil(λ(M))·lg n.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConstantCapacity,
    ExplicitCapacity,
    FatTree,
    MessageSet,
    ScheduleError,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
    theorem1_cycle_bound,
)
from repro.core.partition import group_indices
from repro.core.scheduler import partition_group


def check(ft, m):
    """Schedule, validate both invariants, check the Theorem 1 bound."""
    sched = schedule_theorem1(ft, m)
    sched.validate(ft, m)
    lam = load_factor(ft, m)
    assert sched.num_cycles >= math.ceil(lam)  # the load-factor lower bound
    assert sched.num_cycles <= theorem1_cycle_bound(ft, lam)
    return sched


class TestBasic:
    def test_empty(self):
        sched = check(FatTree(8), MessageSet.empty(8))
        assert sched.num_cycles == 0

    def test_only_self_messages(self):
        sched = check(FatTree(8), MessageSet([1, 2], [1, 2], 8))
        assert sched.num_cycles == 0
        assert sched.n_self_messages == 2

    def test_single_message(self):
        sched = check(FatTree(8), MessageSet([0], [7], 8))
        assert sched.num_cycles == 1

    def test_mismatched_n_rejected(self):
        with pytest.raises(ValueError):
            schedule_theorem1(FatTree(8), MessageSet([0], [1], 16))

    def test_message_exceeding_unit_capacity_is_fine(self):
        """cap = 1 everywhere still schedules (one message at a time
        through any channel)."""
        ft = FatTree(8, ConstantCapacity(3, 1))
        m = MessageSet([0, 1, 2, 3], [4, 5, 6, 7], 8)
        check(ft, m)


class TestWorkloads:
    def test_random_permutation_full_fat_tree(self):
        n = 64
        ft = FatTree(n)
        m = MessageSet.from_permutation(np.random.default_rng(0).permutation(n))
        sched = check(ft, m)
        # λ <= 1 on the full fat-tree, so d <= 2·lg n
        assert sched.num_cycles <= 2 * ft.depth

    def test_hotspot_traffic(self):
        n = 32
        ft = FatTree(n)
        m = MessageSet(list(range(1, n)), [0] * (n - 1), n)
        check(ft, m)

    def test_all_to_all(self):
        n = 16
        ft = FatTree(n)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        check(ft, MessageSet.from_pairs(pairs, n))

    def test_bit_reversal_on_skinny_tree(self):
        n = 32
        ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
        rev = [int(f"{i:05b}"[::-1], 2) for i in range(n)]
        check(ft, MessageSet(list(range(n)), rev, n))

    def test_heavy_random_traffic_narrow_tree(self):
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16))
        rng = np.random.default_rng(42)
        m = MessageSet(rng.integers(0, n, 1000), rng.integers(0, n, 1000), n)
        check(ft, m)

    def test_local_traffic_costs_few_cycles(self):
        """Neighbour exchanges route within exchanges — the telephone
        analogy of §II: local traffic should need few delivery cycles even
        though total volume is large."""
        n = 64
        ft = FatTree(n)
        pairs = [(i, i ^ 1) for i in range(n)]
        sched = check(ft, MessageSet.from_pairs(pairs, n))
        assert sched.num_cycles <= 2  # all LCAs at the leaf-pair level

    def test_duplicated_messages(self):
        ft = FatTree(16)
        m = MessageSet([0] * 8, [15] * 8, 16)
        sched = check(ft, m)
        assert sched.num_cycles == 8  # single-wire leaf channel


class TestStructure:
    def test_per_level_cycle_counts_sum_to_d(self):
        ft = FatTree(32)
        rng = np.random.default_rng(1)
        m = MessageSet(rng.integers(0, 32, 200), rng.integers(0, 32, 200), 32)
        sched = schedule_theorem1(ft, m)
        assert sum(sched.per_level_cycles.values()) == sched.num_cycles

    def test_cycles_only_mix_same_level_lcas(self):
        """Every delivery cycle contains messages whose LCAs all sit at
        one tree level (the level-by-level structure of the proof)."""
        ft = FatTree(32)
        rng = np.random.default_rng(2)
        m = MessageSet(rng.integers(0, 32, 150), rng.integers(0, 32, 150), 32)
        sched = schedule_theorem1(ft, m)
        for cycle in sched:
            levels = {
                ft.depth - (s ^ d).bit_length() for s, d in cycle
            }
            assert len(levels) == 1

    def test_validator_catches_bad_partition(self):
        ft = FatTree(8)
        m = MessageSet([0, 1], [4, 5], 8)
        sched = schedule_theorem1(ft, m)
        sched.cycles.append(MessageSet([0], [4], 8))  # duplicate a message
        with pytest.raises(ScheduleError):
            sched.validate(ft, m)

    def test_validator_catches_overloaded_cycle(self):
        ft = FatTree(8, ConstantCapacity(3, 1))
        overloaded = MessageSet([0, 1], [4, 5], 8)  # root load 2 > cap 1
        sched = schedule_theorem1(ft, overloaded)
        sched.cycles = [overloaded]
        with pytest.raises(ScheduleError):
            sched.validate(ft, overloaded)


class TestPartitionGroup:
    def test_group_piece_count_bound(self):
        """A group with load factor λ_g splits into <= 2^ceil(lg λ_g)
        one-cycle pieces."""
        n = 16
        ft = FatTree(n, ConstantCapacity(4, 2))
        m = MessageSet([0] * 11, [8] * 11, n)  # λ_g = 11/2 through leaf wires?
        # leaf channel of 0 has cap 2 and load 11 -> λ_g = 5.5
        groups = group_indices(m, ft.depth)
        (idx,) = groups.values()
        pieces = partition_group(ft, m, idx)
        lam_g = 11 / 2
        assert len(pieces) <= 2 ** math.ceil(math.log2(lam_g))

    def test_zero_capacity_message_raises(self):
        """A single unsplittable message that still violates capacity is
        impossible with positive capacities; the guard is unreachable in
        normal use but protects against broken custom profiles."""
        # capacities are validated positive, so construct the condition
        # artificially via partition_group's own error path: not possible
        # through the public API — assert the public API always succeeds.
        ft = FatTree(4, ConstantCapacity(2, 1))
        m = MessageSet([0], [3], 4)
        sched = schedule_theorem1(ft, m)
        sched.validate(ft, m)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 31), st.integers(0, 31)), max_size=120),
    st.sampled_from([1, 2, 4]),
)
def test_schedule_property(pairs, cap_scale):
    """Any message set on any of several capacity profiles yields a valid
    schedule within the Theorem 1 bound."""
    n = 32
    caps = [max(1, (n >> k) * cap_scale // 4) for k in range(6)]
    ft = FatTree(n, ExplicitCapacity(caps))
    m = MessageSet.from_pairs(pairs, n)
    check(ft, m)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2 ** 32 - 1))
def test_random_permutations_property(seed):
    n = 64
    ft = FatTree(n, UniversalCapacity(n, 32))
    m = MessageSet.from_permutation(np.random.default_rng(seed).permutation(n))
    check(ft, m)
