"""Input-validation hardening: malformed inputs fail fast and loudly.

Negative-path tests: every rejected input must raise ``ValueError`` with
a message naming the offending value, so a user who mis-builds a
workload or tree gets pointed at their bug instead of a downstream
index error.
"""

import numpy as np
import pytest

from repro.core import FatTree, MessageSet


class TestMessageSetEndpoints:
    def test_src_out_of_range_named(self):
        with pytest.raises(ValueError) as exc:
            MessageSet([0, 97], [1, 2], 64)
        assert "src[1] = 97" in str(exc.value)

    def test_dst_out_of_range_named(self):
        with pytest.raises(ValueError) as exc:
            MessageSet([0, 1], [1, 64], 64)
        assert "dst[1] = 64" in str(exc.value)

    def test_negative_endpoint_rejected(self):
        with pytest.raises(ValueError) as exc:
            MessageSet([-3], [1], 8)
        assert "-3" in str(exc.value)

    def test_boundary_values_accepted(self):
        m = MessageSet([0, 63], [63, 0], 64)
        assert len(m) == 2

    def test_numpy_arrays_validated_too(self):
        with pytest.raises(ValueError):
            MessageSet(np.array([5]), np.array([200]), 64)


class TestFatTreeSize:
    @pytest.mark.parametrize("n", [0, -4, 3, 12, 100])
    def test_non_power_of_two_rejected(self, n):
        with pytest.raises(ValueError) as exc:
            FatTree(n)
        assert str(n) in str(exc.value)
        assert "power of two" in str(exc.value)

    @pytest.mark.parametrize("n", [2, 4, 64, 1024])
    def test_powers_of_two_accepted(self, n):
        assert FatTree(n).n == n
