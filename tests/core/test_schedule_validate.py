"""`Schedule.validate` rejects corrupted schedules with a precise
`ScheduleError` — the invariant the verify oracle leans on."""

import dataclasses

import pytest

from repro.core import FatTree, MessageSet, Schedule, ScheduleError
from repro.core.capacity import UniversalCapacity
from repro.core.scheduler import schedule_theorem1
from repro.workloads import bit_reversal, uniform_random


@pytest.fixture
def ft():
    return FatTree(16, UniversalCapacity(16, 8, strict=False))


@pytest.fixture
def messages():
    return bit_reversal(16)


@pytest.fixture
def sched(ft, messages):
    return schedule_theorem1(ft, messages)


class TestHappyPath:
    def test_theorem1_schedule_validates(self, ft, messages, sched):
        sched.validate(ft, messages)  # must not raise

    def test_per_level_accounting_holds_for_theorem1(self, ft, sched):
        assert sched.per_level_cycles
        assert sum(sched.per_level_cycles.values()) == sched.num_cycles

    def test_empty_per_level_bookkeeping_is_fine(self, ft, messages, sched):
        bare = Schedule(
            cycles=sched.cycles, n_self_messages=sched.n_self_messages
        )
        bare.validate(ft, messages)  # schedulers without bookkeeping pass


class TestSuiteValidationNet:
    def test_entry_points_are_wrapped(self):
        from repro.core import scheduler

        assert getattr(
            scheduler.schedule_theorem1, "__schedule_validating__", False
        )

    def test_net_validates_each_call(self, ft, messages):
        import tests.conftest as suite_conftest
        from repro.core.scheduler import schedule_theorem1

        before = suite_conftest.VALIDATION_COUNTS["schedule_theorem1"]
        schedule_theorem1(ft, messages)
        after = suite_conftest.VALIDATION_COUNTS["schedule_theorem1"]
        assert after == before + 1


class TestCorruption:
    def test_overloaded_cycle_rejected(self, messages, sched):
        # merge everything into a single cycle on a skinny (w = 2) tree:
        # λ of that one cycle exceeds 1
        skinny = FatTree(16, UniversalCapacity(16, 2, strict=False))
        merged = MessageSet.empty(16)
        for cycle in sched.cycles:
            merged = merged.concat(cycle)
        bad = Schedule(
            cycles=[merged], n_self_messages=sched.n_self_messages
        )
        with pytest.raises(ScheduleError, match="not a one-cycle set"):
            bad.validate(skinny, messages)

    def test_dropped_message_rejected(self, ft, messages, sched):
        chopped = [
            MessageSet(c.src[:-1], c.dst[:-1], c.n) if len(c) else c
            for c in sched.cycles
        ]
        bad = dataclasses.replace(
            sched, cycles=chopped, per_level_cycles={}
        )
        with pytest.raises(ScheduleError, match="partition"):
            bad.validate(ft, messages)

    def test_wrong_self_message_count_rejected(self, ft, sched):
        noisy = uniform_random(16, 24, seed=5)
        good = schedule_theorem1(ft, noisy)
        bad = dataclasses.replace(
            good, n_self_messages=good.n_self_messages + 1
        )
        with pytest.raises(ScheduleError, match="self-messages"):
            bad.validate(ft, noisy)

    def test_per_level_undercount_rejected(self, ft, messages, sched):
        """A corrupted ledger is caught with a precise error even though
        the cycles themselves are perfectly valid."""
        ledger = dict(sched.per_level_cycles)
        level = next(iter(ledger))
        ledger[level] -= 1
        bad = dataclasses.replace(sched, per_level_cycles=ledger)
        with pytest.raises(ScheduleError) as exc:
            bad.validate(ft, messages)
        msg = str(exc.value)
        assert f"accounts for {sched.num_cycles - 1} cycles" in msg
        assert f"schedule has {sched.num_cycles}" in msg

    def test_per_level_overcount_rejected(self, ft, messages, sched):
        ledger = dict(sched.per_level_cycles)
        ledger[max(ledger) + 1] = 2
        bad = dataclasses.replace(sched, per_level_cycles=ledger)
        with pytest.raises(ScheduleError, match="accounts for"):
            bad.validate(ft, messages)

    def test_negative_per_level_count_rejected(self, ft, messages, sched):
        ledger = dict(sched.per_level_cycles)
        level = next(iter(ledger))
        # keep the sum equal so only the sign check can catch it
        other = next(k for k in ledger if k != level)
        ledger[other] += ledger[level] + 1
        ledger[level] = -1
        bad = dataclasses.replace(sched, per_level_cycles=ledger)
        with pytest.raises(ScheduleError, match="negative"):
            bad.validate(ft, messages)
