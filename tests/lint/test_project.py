"""Tier-2 (``--project``) lint tests.

The demonstrated-catch tests are the PR's acceptance evidence: each one
copies the real ``src/repro`` tree, re-injects a bug class that actually
shipped in PRs 6–8 (or a fresh violation of the same seam), runs the
whole-program lint, and asserts the exact rule id, file and line of the
finding.  The remaining classes cover the engine edge cases: suppression
comments on decorated/async defs, per-rule suppression scoping across
project rules, baseline round-trips, and aliased relative-import call
graph resolution.
"""

import ast
import os
import shutil

from repro.lint import (
    Baseline,
    Finding,
    ModuleContext,
    ProjectContext,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)

REPO_SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def copy_tree(tmp_path):
    """Copy the real package into tmp, preserving the ``src/repro``
    layout that :func:`~repro.lint.context.infer_module_name` keys off."""
    root = tmp_path / "src"
    shutil.copytree(
        os.path.join(REPO_SRC, "repro"),
        root / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return root


def mutate(root, rel, old, new):
    """Replace ``old`` (asserted unique) with ``new`` in one file."""
    path = root / "repro" / rel
    text = path.read_text()
    assert text.count(old) == 1, f"expected exactly one {old!r} in {rel}"
    path.write_text(text.replace(old, new))
    return path


def line_of(path, needle):
    """1-based line number of the unique line containing ``needle``."""
    hits = [
        i
        for i, line in enumerate(path.read_text().splitlines(), 1)
        if needle in line
    ]
    assert len(hits) == 1, f"{needle!r} matched lines {hits} in {path}"
    return hits[0]


def project_lint(root, rule):
    result = lint_paths([str(root)], rule_ids=[rule], project=True)
    assert result.parse_failures == []
    return result


def locations(result):
    return {(f.rule, os.path.basename(f.path), f.line) for f in result.findings}


class TestDemonstratedCatch:
    """Re-inject each historical bug; the matching rule must name it."""

    def test_pickle_boundary_catches_the_pr8_getstate_bug(self, tmp_path):
        # PR 8 shipped __getstate__ without excluding the setattr-stashed
        # path-index LRU; warm caches rode inside every pickled tree.
        root = copy_tree(tmp_path)
        fattree = mutate(
            root,
            os.path.join("core", "fattree.py"),
            '("_path_index_cache", "_capacity_fp")',
            '("_capacity_fp",)',
        )
        result = project_lint(root, "pickle-boundary")
        assert result.exit_code == 3
        assert (
            "pickle-boundary",
            "fattree.py",
            line_of(fattree, "def __getstate__"),
        ) in locations(result)
        assert all(f.rule == "pickle-boundary" for f in result.findings)
        assert "'_path_index_cache'" in result.findings[0].message

    def test_cache_invalidation_catches_the_pr6_fingerprint_bug(self, tmp_path):
        # PR 6 shipped a capacity mutation that skipped the fingerprint
        # fold; the path-index cache served routes for dead capacities.
        root = copy_tree(tmp_path)
        degraded = mutate(
            root,
            os.path.join("faults", "degraded.py"),
            "        fold_capacity_fingerprint(self, h.digest())\n",
            "",
        )
        result = project_lint(root, "cache-invalidation")
        assert result.exit_code == 3
        assert (
            "cache-invalidation",
            "degraded.py",
            line_of(degraded, "self._eff[key] = vec"),
        ) in locations(result)
        assert "fingerprint" in result.findings[0].message

    def test_async_blocking_catches_sleep_and_result_in_serve(self, tmp_path):
        root = copy_tree(tmp_path)
        daemon = root / "repro" / "serve" / "daemon.py"
        daemon.write_text(
            daemon.read_text()
            + "\n\nasync def _lint_probe(fut) -> None:\n"
            "    import time\n\n"
            "    time.sleep(0.5)\n"
            "    fut.result()\n"
        )
        result = project_lint(root, "async-blocking")
        assert result.exit_code == 3
        assert locations(result) == {
            ("async-blocking", "daemon.py", line_of(daemon, "time.sleep(0.5)")),
            ("async-blocking", "daemon.py", line_of(daemon, "fut.result()")),
        }
        by_line = {f.line: f.message for f in result.findings}
        assert "time.sleep" in by_line[line_of(daemon, "time.sleep(0.5)")]
        assert "_lint_probe" in by_line[line_of(daemon, "time.sleep(0.5)")]

    def test_shm_lifecycle_catches_leaks_and_unguarded_unregister(
        self, tmp_path
    ):
        # Two PR 7 disciplines: attach must reach close on every exit,
        # and unregister only ever runs under a tracker_pid ownership
        # test.
        root = copy_tree(tmp_path)
        shm = root / "repro" / "perf" / "shm.py"
        shm.write_text(
            shm.read_text()
            + "\n\ndef _lint_probe_attach(name):\n"
            "    seg = shared_memory.SharedMemory(name=name)\n"
            "    value = int(seg.buf[0])\n"
            "    seg.close()\n"
            "    return value\n"
            "\n\ndef _lint_probe_unregister(name):\n"
            "    resource_tracker.unregister(name, 'shared_memory')\n"
        )
        result = project_lint(root, "shm-lifecycle")
        assert result.exit_code == 3
        assert locations(result) == {
            (
                "shm-lifecycle",
                "shm.py",
                line_of(shm, "seg = shared_memory.SharedMemory(name=name)"),
            ),
            (
                "shm-lifecycle",
                "shm.py",
                line_of(shm, "resource_tracker.unregister(name,"),
            ),
        }
        messages = sorted(f.message for f in result.findings)
        assert any("skips close" in m for m in messages)
        assert any("tracker_pid" in m for m in messages)

    def test_obs_rng_flow_catches_dead_knob_entropy_and_missing_obs(
        self, tmp_path
    ):
        # Three legs of the interprocedural successor to tier-1
        # obs-threading/rng-discipline: a dead seed= knob, an OS-entropy
        # RNG at module scope, and an entry point that reaches
        # resolve_obs through the call graph without accepting obs=.
        root = copy_tree(tmp_path)
        probe = root / "repro" / "workloads" / "probe_lint.py"
        probe.write_text(
            '"""Lint probe (test-injected)."""\n\n'
            "import numpy as np\n\n"
            "_RNG = np.random.default_rng()\n\n\n"
            "def run_probe_dead_knob(n, *, seed=0):\n"
            "    return int(n)\n\n\n"
            "def run_probe_chained(ft, ms):\n"
            "    from ..core.greedy import schedule_greedy_first_fit\n\n"
            "    return schedule_greedy_first_fit(ft, ms)\n"
        )
        result = project_lint(root, "obs-rng-flow")
        assert result.exit_code == 3
        assert locations(result) == {
            (
                "obs-rng-flow",
                "probe_lint.py",
                line_of(probe, "_RNG = np.random.default_rng()"),
            ),
            (
                "obs-rng-flow",
                "probe_lint.py",
                line_of(probe, "def run_probe_dead_knob"),
            ),
            (
                "obs-rng-flow",
                "probe_lint.py",
                line_of(probe, "def run_probe_chained"),
            ),
        }
        by_line = {f.line: f.message for f in result.findings}
        assert "seed=" in by_line[line_of(probe, "def run_probe_dead_knob")]
        assert (
            "resolve_obs" in by_line[line_of(probe, "def run_probe_chained")]
        )


class TestProjectSuppression:
    """Project findings honour each file's own suppression comments."""

    def test_matching_ignore_silences_wrong_rule_does_not(self, tmp_path):
        root = copy_tree(tmp_path)
        daemon = root / "repro" / "serve" / "daemon.py"
        daemon.write_text(
            daemon.read_text()
            + "\n\nasync def _lint_probe(fut) -> None:\n"
            "    import time\n\n"
            "    time.sleep(0.5)  # reprolint: ignore[async-blocking]\n"
            "    fut.result()  # reprolint: ignore[shm-lifecycle]\n"
        )
        result = project_lint(root, "async-blocking")
        # the sleep is suppressed by the right rule id; the result() call
        # carries an ignore for a *different* rule and must still fire
        assert locations(result) == {
            ("async-blocking", "daemon.py", line_of(daemon, "fut.result()")),
        }
        assert result.suppressed >= 1

    def test_standalone_ignore_between_decorator_and_def(self):
        src = (
            "import functools\n\n"
            "@functools.lru_cache\n"
            "# reprolint: ignore[mutable-default]\n"
            "def f(a=[]):\n"
            "    return a\n"
        )
        result = lint_source(src, module="repro.core.tmpmod")
        assert result.findings == []
        assert result.suppressed == 1

    def test_same_line_ignore_on_async_def(self):
        src = (
            "async def f(a=[]):  # reprolint: ignore[mutable-default]\n"
            "    return a\n"
        )
        result = lint_source(src, module="repro.core.tmpmod")
        assert result.findings == []
        assert result.suppressed == 1


class TestBaseline:
    def test_round_trip_keys_on_message_not_line(self, tmp_path):
        finding = Finding(
            rule="async-blocking",
            path="src/repro/serve/daemon.py",
            line=10,
            col=4,
            message="blocking call time.sleep inside async def handle()",
        )
        path = tmp_path / "baseline.json"
        written = write_baseline(str(path), [finding])
        assert len(written) == 1
        loaded = load_baseline(str(path))
        assert finding in loaded
        # same finding at a shifted line (unrelated edit) stays baselined
        moved = Finding(
            rule=finding.rule,
            path="./src/repro/serve/daemon.py",
            line=999,
            col=0,
            message=finding.message,
        )
        assert moved in loaded
        # a changed message (the code changed materially) resurfaces
        changed = Finding(
            rule=finding.rule,
            path=finding.path,
            line=finding.line,
            col=finding.col,
            message="blocking call os.system inside async def handle()",
        )
        assert changed not in loaded

    def test_empty_baseline_subtracts_nothing(self):
        result = lint_source("def f(a=[]):\n    return a\n")
        empty = Baseline()
        assert len(empty) == 0
        assert result.findings[0] not in empty

    def test_baselined_project_findings_do_not_fail_the_run(self, tmp_path):
        root = copy_tree(tmp_path)
        daemon = root / "repro" / "serve" / "daemon.py"
        daemon.write_text(
            daemon.read_text()
            + "\n\nasync def _lint_probe() -> None:\n"
            "    import time\n\n"
            "    time.sleep(0.5)\n"
        )
        first = project_lint(root, "async-blocking")
        assert first.exit_code == 3
        baseline_path = tmp_path / "baseline.json"
        write_baseline(str(baseline_path), first.findings)
        again = lint_paths(
            [str(root)],
            rule_ids=["async-blocking"],
            project=True,
            baseline=load_baseline(str(baseline_path)),
        )
        assert again.findings == []
        assert again.baselined == len(first.findings) == 1
        assert again.exit_code == 0


def _ctx(module, source, *, package=False):
    rel = module.replace(".", "/") + ("/__init__.py" if package else ".py")
    return ModuleContext("src/" + rel, source, ast.parse(source), module)


class TestCallGraphResolution:
    """Aliased and relative imports resolve to defining qualnames."""

    def test_aliased_relative_imports_and_reexports(self):
        impl = _ctx(
            "repro.pkgx.impl",
            "def target():\n    return 1\n",
        )
        package = _ctx(
            "repro.pkgx",
            "from .impl import target as exported\n",
            package=True,
        )
        user = _ctx(
            "repro.pkgx.user",
            "from . import impl as im\n"
            "from .impl import target as aliased\n"
            "from repro.pkgx import exported as chained\n\n\n"
            "def caller():\n"
            "    aliased()\n"
            "    im.target()\n"
            "    chained()\n",
        )
        project = ProjectContext([impl, package, user])
        # all three spellings collapse onto the one defining qualname
        assert project.calls["repro.pkgx.user.caller"] == {
            "repro.pkgx.impl.target"
        }
        # package-level re-export chases through __init__'s import table
        assert (
            project.resolve_symbol("repro.pkgx.exported")
            == "repro.pkgx.impl.target"
        )
        assert project.reachable(["repro.pkgx.user.caller"]) == {
            "repro.pkgx.user.caller",
            "repro.pkgx.impl.target",
        }

    def test_real_package_reexport_resolves(self):
        # the smoke case from the repo itself: the repro.core package
        # re-export resolves to the defining module
        with open(
            os.path.join(REPO_SRC, "repro", "core", "__init__.py"),
            encoding="utf-8",
        ) as fh:
            init_src = fh.read()
        with open(
            os.path.join(REPO_SRC, "repro", "core", "greedy.py"),
            encoding="utf-8",
        ) as fh:
            greedy_src = fh.read()
        project = ProjectContext(
            [
                _ctx("repro.core", init_src, package=True),
                _ctx("repro.core.greedy", greedy_src),
            ]
        )
        assert (
            project.resolve_symbol("repro.core.schedule_greedy_first_fit")
            == "repro.core.greedy.schedule_greedy_first_fit"
        )


class TestProjectSelfHost:
    def test_src_tree_is_project_lint_clean(self):
        """CI's tier-2 zero-tolerance gate, run in-process: the package
        source must carry no project findings either."""
        result = lint_paths([REPO_SRC], project=True)
        assert result.parse_failures == []
        assert [f.format() for f in result.findings] == []
        assert result.exit_code == 0
