"""CLI tests for ``repro lint`` and ``repro fuzz --lint-corpus``."""

import json
import os

from repro.cli import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestLintCommand:
    def test_clean_file_exits_zero(self, capsys):
        code, out, _ = run(
            capsys, "lint", os.path.join(FIXTURES, "good_bare_except.py")
        )
        assert code == 0
        assert "0 finding(s)" in out

    def test_findings_exit_three(self, capsys):
        path = os.path.join(FIXTURES, "bad_bare_except.py")
        code, out, _ = run(capsys, "lint", path)
        assert code == 3
        assert f"{path}:7:4: bare-except:" in out

    def test_parse_failure_exits_two(self, capsys, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def broken(:\n")
        code, out, _ = run(capsys, "lint", str(broken))
        assert code == 2

    def test_src_tree_clean_via_cli(self, capsys):
        root = os.path.normpath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        code, out, _ = run(capsys, "lint", root)
        assert code == 0

    def test_json_format(self, capsys):
        code, out, _ = run(
            capsys,
            "lint",
            os.path.join(FIXTURES, "bad_bare_except.py"),
            "--format",
            "json",
        )
        assert code == 3
        payload = json.loads(out)
        assert payload["version"] == 1
        assert payload["findings"][0]["rule"] == "bare-except"

    def test_rule_selection(self, capsys):
        code, out, _ = run(
            capsys,
            "lint",
            os.path.join(FIXTURES, "bad_bare_except.py"),
            "--rule",
            "mutable-default",
        )
        assert code == 0

    def test_unknown_rule_exits_two(self, capsys):
        code, _, err = run(
            capsys, "lint", "--rule", "no-such-rule", FIXTURES
        )
        assert code == 2
        assert "unknown rule" in err

    def test_list_rules(self, capsys):
        code, out, _ = run(capsys, "lint", "--list-rules")
        assert code == 0
        assert "rng-discipline" in out
        assert "kernel-oracle-pairing" in out

    def test_list_rules_includes_project_section(self, capsys):
        code, out, _ = run(capsys, "lint", "--list-rules")
        assert code == 0
        assert "project rules (require --project):" in out
        assert "pickle-boundary" in out
        assert "obs-rng-flow" in out


class TestLintProjectCLI:
    def test_src_tree_clean_under_project_lint(self, capsys):
        """The CI tier-2 gate: whole-program rules over src/ must be
        finding-free with no baseline."""
        root = os.path.normpath(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        code, out, _ = run(capsys, "lint", "--project", root)
        assert code == 0
        assert "0 finding(s)" in out

    def test_project_rule_without_project_flag_errors(self, capsys):
        code, _, err = run(
            capsys, "lint", "--rule", "pickle-boundary", FIXTURES
        )
        assert code == 2
        assert "--project" in err

    def test_github_format(self, capsys):
        path = os.path.join(FIXTURES, "bad_bare_except.py")
        code, out, _ = run(capsys, "lint", path, "--format", "github")
        assert code == 3
        assert f"::error file={path},line=7,col=5," in out
        assert "title=repro-lint bare-except::" in out
        assert "::notice title=repro-lint summary::" in out

    def test_write_then_apply_baseline(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        path = os.path.join(FIXTURES, "bad_bare_except.py")
        code, _, err = run(
            capsys, "lint", path, "--write-baseline", str(baseline)
        )
        assert code == 3
        assert "wrote" in err
        code, out, _ = run(capsys, "lint", path, "--baseline", str(baseline))
        assert code == 0
        assert "0 finding(s)" in out
        assert "1 baselined" in out

    def test_missing_baseline_file_errors(self, capsys, tmp_path):
        code, _, err = run(
            capsys,
            "lint",
            "--baseline",
            str(tmp_path / "absent.json"),
            FIXTURES,
        )
        assert code == 2
        assert "error:" in err

    def test_malformed_baseline_errors(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"version": 99, "entries": []}\n')
        code, _, err = run(
            capsys, "lint", "--baseline", str(bad), FIXTURES
        )
        assert code == 2
        assert "version" in err


class TestFuzzLintCorpus:
    def test_reproducer_snippets_are_lint_clean(self, capsys):
        code, out, _ = run(
            capsys, "fuzz", "--lint-corpus", "--iters", "5", "--seed", "1"
        )
        assert code == 0
        assert "lint-clean" in out
