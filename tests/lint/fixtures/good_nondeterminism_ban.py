"""Fixture: deterministic code under the banned-module scope
(nondeterminism-ban must stay silent — perf_counter spans are the
sanctioned observability timing primitive)."""

import time


def span_seconds(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0
