"""Fixture: explicit dtypes (dtype-contract must stay silent)."""

import numpy as np


def make_buffers(n, extra):
    loads = np.zeros(n, dtype=np.int64)
    fill = np.full(n, 7, np.int64)
    forwarded = np.empty(n, **extra)
    return loads, fill, forwarded
