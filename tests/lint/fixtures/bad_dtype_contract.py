"""Fixture: dtype-less array constructors (dtype-contract must flag both)."""

import numpy as np


def make_buffers(n):
    loads = np.zeros(n)
    fill = np.full(n, 7)
    return loads, fill
