"""Fixture: mutable default arguments (mutable-default must flag both)."""


def collect(item, acc=[]):
    acc.append(item)
    return acc


def tally(key, *, table=dict()):
    table[key] = table.get(key, 0) + 1
    return table
