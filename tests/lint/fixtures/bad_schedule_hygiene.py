"""Fixture: unvalidated Schedule (schedule-hygiene must flag it)."""

from repro.core import Schedule


def count_cycles(cycles):
    sched = Schedule(cycles=cycles)
    return sched.num_cycles
