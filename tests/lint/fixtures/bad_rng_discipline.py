"""Fixture: module-level RNG draws (rng-discipline must flag both)."""

import random

import numpy as np


def shuffle_ranks(pairs):
    noise = np.random.random(len(pairs))
    random.shuffle(pairs)
    return pairs, noise
