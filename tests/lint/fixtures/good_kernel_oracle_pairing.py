"""Fixture: a complete kernel/oracle pair plus an unclaiming public
function (kernel-oracle-pairing must stay silent)."""


def _reference_route(messages):
    """Pure-Python oracle for route()."""
    return sorted(messages)


def route(messages):
    """Vectorised router, bit-identical to _reference_route for any
    input (property-tested)."""
    return sorted(messages)


def summarise(messages):
    """Makes no bit-parity claim, so it needs no oracle."""
    return len(messages)
