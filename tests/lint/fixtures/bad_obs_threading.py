"""Fixture: entry points that drop observability (obs-threading must
flag both — one never accepts obs=, one accepts but never forwards)."""


def schedule_nothing(ft, messages):
    return []


def simulate_dropper(ft, messages, *, obs=None):
    return list(messages)
