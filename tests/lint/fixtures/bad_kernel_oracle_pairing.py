"""Fixture: orphaned halves of kernel/oracle pairs (kernel-oracle-pairing
must flag both directions)."""


def _reference_route(messages):
    """Oracle with no public kernel left in the module."""
    return sorted(messages)


def pack(gids):
    """Vectorised packer, bit-identical to _reference_pack (property-
    tested) — but the oracle was deleted out from under it."""
    return gids
