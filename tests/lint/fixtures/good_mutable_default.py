"""Fixture: None defaults constructed inside (mutable-default must stay
silent)."""


def collect(item, acc=None):
    if acc is None:
        acc = []
    acc.append(item)
    return acc


def tally(key, *, table=None):
    table = dict(table or {})
    table[key] = table.get(key, 0) + 1
    return table
