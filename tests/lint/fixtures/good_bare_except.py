"""Fixture: named exception types (bare-except must stay silent)."""


def tolerate(fn):
    try:
        return fn()
    except (ValueError, RuntimeError):
        return None
