"""Fixture: a bare except clause (bare-except must flag it)."""


def swallow(fn):
    try:
        return fn()
    except:
        return None
