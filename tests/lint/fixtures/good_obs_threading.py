"""Fixture: entry points that thread obs= through (obs-threading must
stay silent; helpers and private functions are out of scope)."""

from repro.obs import resolve_obs


def schedule_traced(ft, messages, *, obs=None):
    obs = resolve_obs(obs)
    with obs.kernel("schedule_traced", n=ft.n):
        return []


def run_forwarder(ft, messages, *, obs=None):
    return schedule_traced(ft, messages, obs=obs)


def _private_helper(ft, messages):
    return []


def describe(ft):
    return ft.n
