"""Fixture: producer pattern and explicit validation (schedule-hygiene
must stay silent)."""

from repro.core import Schedule


def build(cycles):
    return Schedule(cycles=cycles)


def build_checked(ft, messages, cycles):
    sched = Schedule(cycles=cycles)
    sched.validate(ft, messages)
    return sched.num_cycles
