"""Fixture: wall-clock and OS-entropy reads (nondeterminism-ban must
flag both)."""

import os
import time


def stamp_run():
    started = time.time()
    token = os.urandom(8)
    return started, token
