"""Fixture: seeded, instance-based RNG (rng-discipline must stay silent)."""

import random

import numpy as np


def shuffle_ranks(pairs, seed):
    rng = np.random.default_rng(seed)
    noise = rng.random(len(pairs))
    random.Random(seed).shuffle(pairs)
    return pairs, noise
