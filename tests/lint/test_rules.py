"""Fixture-based tests for every lint rule.

Each rule has a ``bad_*`` fixture whose findings are pinned to exact
``(line, col)`` positions and a ``good_*`` fixture that must stay
silent.  The suppression round-trip appends ``# reprolint:
ignore[<rule>]`` to every flagged line of a bad fixture and asserts the
findings disappear (and are counted as suppressed).
"""

import os

import pytest

from repro.lint import lint_file, lint_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: rule id -> (fixture stem, module name for scoping, expected bad (line, col))
CASES = {
    "rng-discipline": (
        "rng_discipline",
        "repro.analysis.fixture",
        [(9, 12), (10, 4)],
    ),
    "dtype-contract": (
        "dtype_contract",
        "repro.core.fixture",
        [(7, 12), (8, 11)],
    ),
    "schedule-hygiene": (
        "schedule_hygiene",
        "repro.analysis.fixture",
        [(7, 12)],
    ),
    "obs-threading": (
        "obs_threading",
        "repro.core.online",
        [(5, 0), (9, 0)],
    ),
    "nondeterminism-ban": (
        "nondeterminism_ban",
        "repro.core.fixture",
        [(9, 14), (10, 12)],
    ),
    "kernel-oracle-pairing": (
        "kernel_oracle_pairing",
        "repro.perf.fixture",
        [(5, 0), (10, 0)],
    ),
    "mutable-default": (
        "mutable_default",
        None,
        [(4, 22), (9, 24)],
    ),
    "bare-except": (
        "bare_except",
        None,
        [(7, 4)],
    ),
}


def fixture_path(kind, stem):
    return os.path.join(FIXTURES, f"{kind}_{stem}.py")


@pytest.mark.parametrize("rule_id", sorted(CASES), ids=sorted(CASES))
class TestRuleFixtures:
    def test_bad_fixture_flagged_at_exact_positions(self, rule_id):
        stem, module, expected = CASES[rule_id]
        result = lint_file(fixture_path("bad", stem), module=module)
        assert result.parse_failures == []
        got = [(f.rule, f.line, f.col) for f in result.findings]
        assert got == [(rule_id, line, col) for line, col in expected]
        assert result.exit_code == 3

    def test_good_fixture_silent(self, rule_id):
        stem, module, _ = CASES[rule_id]
        result = lint_file(fixture_path("good", stem), module=module)
        assert result.parse_failures == []
        assert result.findings == []
        assert result.exit_code == 0

    def test_suppression_round_trip(self, rule_id):
        stem, module, expected = CASES[rule_id]
        path = fixture_path("bad", stem)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for line, _ in expected:
            lines[line - 1] += f"  # reprolint: ignore[{rule_id}]"
        suppressed_src = "\n".join(lines) + "\n"
        result = lint_source(suppressed_src, path, module=module)
        assert result.findings == []
        assert result.suppressed == len(expected)
        assert result.exit_code == 0

    def test_messages_name_the_problem(self, rule_id):
        stem, module, _ = CASES[rule_id]
        result = lint_file(fixture_path("bad", stem), module=module)
        for finding in result.findings:
            assert finding.message
            rendered = finding.format()
            assert rule_id in rendered
            assert f":{finding.line}:" in rendered


class TestSuppressionForms:
    def test_standalone_comment_covers_next_line(self):
        src = (
            "import numpy as np\n"
            "# reprolint: ignore[rng-discipline]\n"
            "x = np.random.random()\n"
        )
        result = lint_source(src, module="repro.analysis.tmp")
        assert result.findings == []
        assert result.suppressed == 1

    def test_bare_ignore_suppresses_all_rules(self):
        src = (
            "import numpy as np\n"
            "x = np.zeros(np.random.randint(4))  # reprolint: ignore\n"
        )
        result = lint_source(src, module="repro.core.tmp")
        assert result.findings == []
        assert result.suppressed == 2

    def test_wrong_rule_id_does_not_suppress(self):
        src = (
            "import numpy as np\n"
            "x = np.random.random()  # reprolint: ignore[bare-except]\n"
        )
        result = lint_source(src, module="repro.analysis.tmp")
        assert [f.rule for f in result.findings] == ["rng-discipline"]
        assert result.suppressed == 0


class TestRuleScoping:
    def test_obs_threading_ignores_non_scheduler_modules(self):
        path = fixture_path("bad", "obs_threading")
        result = lint_file(path, module="repro.analysis.tables")
        assert [f for f in result.findings if f.rule == "obs-threading"] == []

    def test_nondeterminism_ban_ignores_obs_module(self):
        path = fixture_path("bad", "nondeterminism_ban")
        result = lint_file(path, module="repro.obs.timing")
        assert result.findings == []

    def test_schedule_hygiene_exempts_defining_module(self):
        path = fixture_path("bad", "schedule_hygiene")
        result = lint_file(path, module="repro.core.schedule")
        assert result.findings == []

    def test_aliased_import_still_resolves(self):
        src = (
            "import numpy.random as nr\n"
            "x = nr.random()\n"
        )
        result = lint_source(src, module="repro.analysis.tmp")
        assert [f.rule for f in result.findings] == ["rng-discipline"]

    def test_local_variable_named_random_not_confused(self):
        src = (
            "def f(random):\n"
            "    return random.random()\n"
        )
        result = lint_source(src, module="repro.analysis.tmp")
        assert result.findings == []
