"""Engine-level tests: exit codes, parse failures, module inference,
rule selection, reporters — and the demonstrated-catch acceptance test
(inject three convention violations into a fresh module and assert the
linter reports all three)."""

import json
import os

import pytest

from repro.lint import (
    PROJECT_RULES,
    RULES,
    all_project_rule_ids,
    all_rule_ids,
    infer_module_name,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    render_json,
    render_rule_table,
    render_text,
)


class TestDemonstratedCatch:
    def test_injected_violations_all_reported(self, tmp_path):
        """The acceptance check: a module with a global-RNG draw, a
        dtype-less np.empty in repro.core context, and an unvalidated
        Schedule must produce all three findings."""
        bad = tmp_path / "tmpmod.py"
        bad.write_text(
            "import numpy as np\n"
            "from repro.core import Schedule\n"
            "\n"
            "\n"
            "def build(cycles):\n"
            "    rank = np.random.random()\n"
            "    buf = np.empty(8)\n"
            "    sched = Schedule(cycles=cycles)\n"
            "    return rank, buf, sched.num_cycles\n"
        )
        result = lint_file(str(bad), module="repro.core.tmpmod")
        rules = sorted(f.rule for f in result.findings)
        assert rules == [
            "dtype-contract",
            "rng-discipline",
            "schedule-hygiene",
        ]
        assert result.exit_code == 3


class TestExitCodes:
    def test_clean_source_exits_zero(self):
        result = lint_source("x = 1\n")
        assert result.exit_code == 0
        assert result.files_checked == 1

    def test_findings_exit_three(self):
        result = lint_source("def f(a=[]):\n    return a\n")
        assert result.exit_code == 3

    def test_parse_failure_exits_two(self):
        result = lint_source("def broken(:\n")
        assert result.exit_code == 2
        assert result.parse_failures[0].line == 1

    def test_parse_failure_takes_precedence_over_findings(self, tmp_path):
        (tmp_path / "bad.py").write_text("def f(a=[]):\n    return a\n")
        (tmp_path / "broken.py").write_text("def broken(:\n")
        result = lint_paths([str(tmp_path)])
        assert result.findings and result.parse_failures
        assert result.exit_code == 2

    def test_unreadable_file_is_a_parse_failure(self, tmp_path):
        result = lint_file(str(tmp_path / "missing.py"))
        assert result.exit_code == 2
        assert "unreadable" in result.parse_failures[0].message


class TestRuleSelection:
    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_source("x = 1\n", rule_ids=["no-such-rule"])

    def test_single_rule_selection(self):
        src = "import numpy as np\nx = np.random.random()\ny = np.zeros(3)\n"
        result = lint_source(src, rule_ids=["dtype-contract"])
        assert [f.rule for f in result.findings] == ["dtype-contract"]

    def test_registry_has_the_eight_module_rules(self):
        assert all_rule_ids() == sorted(RULES) == [
            "bare-except",
            "dtype-contract",
            "kernel-oracle-pairing",
            "mutable-default",
            "nondeterminism-ban",
            "obs-threading",
            "rng-discipline",
            "schedule-hygiene",
        ]

    def test_registry_has_the_five_project_rules(self):
        assert all_project_rule_ids() == sorted(PROJECT_RULES) == [
            "async-blocking",
            "cache-invalidation",
            "obs-rng-flow",
            "pickle-boundary",
            "shm-lifecycle",
        ]
        # the two registries never share an id: suppression comments and
        # --rule selection would become ambiguous
        assert not set(RULES) & set(PROJECT_RULES)

    def test_project_rule_id_without_project_flag_raises(self):
        with pytest.raises(ValueError, match="--project"):
            lint_paths([], rule_ids=["pickle-boundary"])


class TestModuleInference:
    def test_src_layout(self):
        assert (
            infer_module_name("/repo/src/repro/core/online.py")
            == "repro.core.online"
        )

    def test_package_init_drops_segment(self):
        assert infer_module_name("src/repro/core/__init__.py") == "repro.core"

    def test_outside_package_is_script(self):
        assert infer_module_name("benchmarks/bench_routing.py") is None
        assert infer_module_name("tests/lint/fixtures/bad_bare_except.py") is None


class TestFileWalking:
    def test_skips_caches_and_sorts(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        files = iter_python_files([str(tmp_path)])
        assert [os.path.basename(f) for f in files] == ["a.py", "b.py"]


class TestReporters:
    def test_text_report_lines_are_clickable(self):
        result = lint_source("def f(a=[]):\n    return a\n", path="mod.py")
        text = render_text(result)
        assert "mod.py:1:" in text
        assert "mutable-default" in text
        assert "1 finding(s)" in text

    def test_json_report_is_stable_and_versioned(self):
        result = lint_source("def f(a=[]):\n    return a\n", path="mod.py")
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["files"] == 1
        assert payload["findings"][0]["rule"] == "mutable-default"
        assert payload["findings"][0]["line"] == 1
        assert payload["parse_failures"] == []

    def test_rule_table_lists_every_rule(self):
        table = render_rule_table()
        for rule_id in RULES:
            assert rule_id in table


class TestSelfHosting:
    def test_src_tree_is_lint_clean(self):
        """CI's zero-tolerance gate, run in-process: the package source
        must carry no findings (suppressions are allowed and counted)."""
        root = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        result = lint_paths([os.path.normpath(root)])
        assert result.parse_failures == []
        assert [f.format() for f in result.findings] == []
