"""The chaos runtime entry points: empty-timeline bit-identity, the
per-cycle partition invariant, drop/park/abort accounting, and the
graceful-degradation gates."""

import dataclasses

import numpy as np
import pytest

from repro.chaos import (
    ChaosEvent,
    ChaosSchedule,
    assert_delivered_floor,
    delivered_fraction,
    random_timeline,
    run_chaos_online_retry,
    run_chaos_random_rank,
    run_chaos_schedule,
    run_chaos_store_and_forward,
    run_chaos_switchsim,
)
from repro.core import (
    DeliveryTimeout,
    Direction,
    FatTree,
    MessageSet,
    ScheduleError,
    schedule_greedy_first_fit,
    schedule_random_rank,
    schedule_theorem1,
    simulate_online_retry,
)
from repro.faults import DegradedFatTree, FaultModel
from repro.hardware.buffered import run_store_and_forward
from repro.hardware.switchsim import run_until_delivered
from repro.obs import Obs
from repro.workloads import uniform_random

EMPTY = ChaosSchedule()
# killing the root severs channels (1,0) and (1,1): every message whose
# path crosses the root dies with it, local traffic is untouched
ROOT_KILL = ChaosSchedule((ChaosEvent(at=0, kind="switch-kill", level=0, index=0),))


def _pairs(sched):
    """Exact per-cycle (src, dst) sequences — the bit-identity view."""
    return [list(zip(c.src.tolist(), c.dst.tolist())) for c in sched.cycles]


def _sorted_pairs(sched):
    return [sorted(zip(c.src.tolist(), c.dst.tolist())) for c in sched.cycles]


def _split_traffic(n=16):
    """Half root-crossing, half leaf-local traffic on an n-leaf tree."""
    crossing = [(i, i + n // 2) for i in range(n // 2)]
    local = [(i, i ^ 1) for i in range(n // 2)]
    pairs = crossing + local
    ms = MessageSet([s for s, _ in pairs], [d for _, d in pairs], n)
    return ms, crossing, local


class TestEmptyTimelineIdentity:
    """chaos=None and an empty timeline must be indistinguishable."""

    def test_random_rank(self):
        ft = FatTree(16)
        messages = uniform_random(16, 40, seed=3)
        chaos = run_chaos_random_rank(ft, messages, EMPTY, seed=5)
        healthy = schedule_random_rank(ft, messages, seed=5)
        assert _pairs(chaos) == _pairs(healthy)
        assert chaos.dropped is None
        assert chaos.cycle_stats  # the instrumented run carries stats
        chaos.validate(ft, messages)

    def test_online_retry(self):
        ft = FatTree(16)
        messages = uniform_random(16, 40, seed=4)
        chaos = run_chaos_online_retry(ft, messages, EMPTY, seed=5)
        healthy = simulate_online_retry(ft, messages, seed=5)
        assert _pairs(chaos) == _pairs(healthy)
        assert chaos.dropped is None

    @pytest.mark.parametrize(
        "scheduler,reference",
        [("theorem1", schedule_theorem1), ("greedy", schedule_greedy_first_fit)],
    )
    def test_offline_executor(self, scheduler, reference):
        ft = FatTree(16)
        messages = uniform_random(16, 40, seed=7)
        chaos = run_chaos_schedule(ft, messages, EMPTY, scheduler=scheduler)
        healthy = reference(ft, messages)
        assert _sorted_pairs(chaos) == _sorted_pairs(healthy)
        assert chaos.num_cycles == healthy.num_cycles
        chaos.validate(ft, messages)

    def test_switchsim(self):
        ft = FatTree(16)
        messages = uniform_random(16, 24, seed=1)
        chaos = run_chaos_switchsim(ft, messages, EMPTY, seed=2)
        healthy = run_until_delivered(ft, messages, seed=2)
        assert chaos.cycles == healthy.cycles
        assert chaos.attempts == healthy.attempts
        assert not chaos.dropped
        for cr, hr in zip(chaos.reports, healthy.reports):
            assert sorted((m.src, m.dst) for m in cr.delivered) == sorted(
                (m.src, m.dst) for m in hr.delivered
            )
            assert len(cr.congested) == len(hr.congested)

    def test_buffered(self):
        ft = FatTree(16)
        messages = uniform_random(16, 24, seed=6)
        chaos = run_chaos_store_and_forward(ft, messages, EMPTY)
        healthy = run_store_and_forward(ft, messages)
        assert chaos.makespan == healthy.makespan
        assert np.array_equal(chaos.latencies, healthy.latencies)
        assert chaos.max_queue_depth == healthy.max_queue_depth
        assert not chaos.dropped


class TestPartitionInvariant:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_rank_over_random_timelines(self, seed):
        ft = FatTree(8)
        messages = uniform_random(8, 24, seed=seed)
        timeline = random_timeline(ft, seed=seed, events=5, horizon=8)
        sched = run_chaos_random_rank(ft, messages, timeline, seed=seed)
        sched.validate(ft, messages)
        for stats in sched.cycle_stats:
            stats.check()

    @pytest.mark.parametrize("seed", (0, 1))
    def test_online_retry_over_random_timelines(self, seed):
        ft = FatTree(8)
        messages = uniform_random(8, 24, seed=seed)
        timeline = random_timeline(ft, seed=seed + 10, events=4, horizon=8)
        sched = run_chaos_online_retry(ft, messages, timeline, seed=seed)
        sched.validate(ft, messages)

    def test_corrupted_partition_is_detected(self):
        # regression: Schedule.validate must re-check the per-cycle
        # partition, not trust the run that produced it
        ft = FatTree(16)
        messages, _, _ = _split_traffic()
        sched = run_chaos_random_rank(ft, messages, ROOT_KILL)
        stats = list(sched.cycle_stats)
        stats[0] = dataclasses.replace(stats[0], deferred=stats[0].deferred + 1)
        corrupted = dataclasses.replace(sched, cycle_stats=stats)
        with pytest.raises(ScheduleError):
            corrupted.validate(ft, messages)

    def test_truncated_stats_are_detected(self):
        ft = FatTree(16)
        messages = uniform_random(16, 40, seed=3)
        sched = run_chaos_random_rank(ft, messages, ROOT_KILL)
        assert len(sched.cycle_stats) >= 2
        corrupted = dataclasses.replace(sched, cycle_stats=sched.cycle_stats[:-1])
        with pytest.raises(ScheduleError):
            corrupted.validate(ft, messages)


class TestRecovery:
    def test_healing_storm_delivers_everything(self):
        # every drop has a scheduled repair: severed messages park
        # (deferred), nothing is dropped, delivery completes
        ft = FatTree(16)
        cap_root = ft.cap(1)
        messages = MessageSet(
            [i % 8 for i in range(24)], [8 + (i % 8) for i in range(24)], 16
        )
        events = []
        for index in (0, 1):
            events.append(ChaosEvent(at=1, kind="wire-drop", level=1,
                                     index=index, count=cap_root))
            events.append(ChaosEvent(at=4, kind="wire-repair", level=1,
                                     index=index, count=cap_root))
        sched = run_chaos_random_rank(ft, messages, ChaosSchedule(tuple(events)))
        sched.validate(ft, messages)
        assert sched.dropped is None
        assert delivered_fraction(sched) == 1.0
        assert any(stats.deferred > 0 for stats in sched.cycle_stats)

    def test_unrepaired_root_kill_drops_exactly_crossing_traffic(self):
        ft = FatTree(16)
        messages, crossing, local = _split_traffic()
        sched = run_chaos_random_rank(ft, messages, ROOT_KILL)
        sched.validate(ft, messages)
        dropped = sorted(zip(sched.dropped.src.tolist(), sched.dropped.dst.tolist()))
        assert dropped == sorted(crossing)
        delivered = sorted(p for cycle in _pairs(sched) for p in cycle)
        assert delivered == sorted(local)
        assert delivered_fraction(sched) == 0.5
        assert assert_delivered_floor(sched, 0.5) == 0.5
        with pytest.raises(AssertionError, match="below declared floor"):
            assert_delivered_floor(sched, 0.6)

    def test_on_severed_raise_aborts_with_accounting(self):
        # the mid-flight severance abort path: structured DeliveryTimeout
        # plus a chaos.abort trace and chaos.aborted counter
        ft = FatTree(16)
        messages, crossing, _ = _split_traffic()
        obs = Obs(enabled=True)
        with pytest.raises(DeliveryTimeout) as excinfo:
            run_chaos_random_rank(
                ft, messages, ROOT_KILL, on_severed="raise", obs=obs
            )
        assert sorted(excinfo.value.undelivered) == sorted(crossing)
        assert obs.metrics.counter_value("chaos.aborted") == len(crossing)
        aborts = obs.tracer.select("chaos.abort")
        assert aborts and aborts[0]["severed"] == len(crossing)

    def test_caller_tree_is_never_mutated(self):
        dft = DegradedFatTree(FatTree(16), FaultModel())
        before = [dft.cap_vector(k, Direction.UP).copy()
                  for k in range(1, dft.depth + 1)]
        messages, _, _ = _split_traffic()
        first = run_chaos_random_rank(dft, messages, ROOT_KILL)
        second = run_chaos_random_rank(dft, messages, ROOT_KILL)
        assert _pairs(first) == _pairs(second)  # deterministic replay
        for k, vec in zip(range(1, dft.depth + 1), before):
            assert np.array_equal(dft.cap_vector(k, Direction.UP), vec)

    def test_switchsim_drop_accounting(self):
        ft = FatTree(16)
        messages, crossing, _ = _split_traffic()
        outcome = run_chaos_switchsim(ft, messages, ROOT_KILL, seed=0)
        assert sorted(outcome.dropped) == sorted(crossing)
        assert delivered_fraction(outcome) == 0.5
        for stats in outcome.cycle_stats:
            stats.check()
        assert sum(s.dropped for s in outcome.cycle_stats) == len(crossing)

    def test_buffered_drop_accounting(self):
        ft = FatTree(16)
        messages, crossing, _ = _split_traffic()
        run = run_chaos_store_and_forward(ft, messages, ROOT_KILL)
        assert sorted(run.dropped) == sorted(crossing)
        assert delivered_fraction(run) == 0.5
        # dropped messages never accrue latency
        assert int((run.latencies == 0).sum()) >= len(crossing)

    def test_online_retry_drop_accounting(self):
        ft = FatTree(16)
        messages, crossing, _ = _split_traffic()
        sched = run_chaos_online_retry(ft, messages, ROOT_KILL)
        sched.validate(ft, messages)
        dropped = sorted(zip(sched.dropped.src.tolist(), sched.dropped.dst.tolist()))
        assert dropped == sorted(crossing)

    def test_offline_executor_drops_and_heals(self):
        ft = FatTree(16)
        messages, crossing, _ = _split_traffic()
        sched = run_chaos_schedule(ft, messages, ROOT_KILL, scheduler="theorem1")
        sched.validate(ft, messages)
        dropped = sorted(zip(sched.dropped.src.tolist(), sched.dropped.dst.tolist()))
        assert dropped == sorted(crossing)
        assert delivered_fraction(sched) == 0.5


class TestGates:
    def test_unknown_scheduler_rejected(self):
        ft = FatTree(8)
        with pytest.raises(ValueError, match="scheduler"):
            run_chaos_schedule(ft, uniform_random(8, 4, seed=0), EMPTY,
                               scheduler="quantum")

    def test_delivered_fraction_rejects_unknown_results(self):
        with pytest.raises(TypeError, match="delivered-fraction"):
            delivered_fraction(42)

    def test_empty_workload_reports_full_delivery(self):
        ft = FatTree(8)
        sched = run_chaos_random_rank(ft, MessageSet([], [], 8), EMPTY)
        assert delivered_fraction(sched) == 1.0
