"""Chaos timelines: event validation, compact serialisation, and the
seeded scenario generator."""

import pytest

from repro.chaos import ChaosEvent, ChaosSchedule, random_timeline
from repro.core import FatTree


class TestChaosEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="event time"):
            ChaosEvent(at=-1, kind="wire-drop", level=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            ChaosEvent(at=0, kind="meteor-strike")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            ChaosEvent(at=0, kind="wire-drop", level=1, direction="sideways")

    def test_zero_wire_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            ChaosEvent(at=0, kind="wire-drop", level=1, count=0)

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError, match="loss rate"):
            ChaosEvent(at=0, kind="loss-rate", rate=1.0)
        with pytest.raises(ValueError, match="loss rate"):
            ChaosEvent(at=0, kind="loss-rate", rate=-0.1)
        assert ChaosEvent(at=0, kind="loss-rate", rate=0.0).rate == 0.0

    def test_negative_location_rejected(self):
        with pytest.raises(ValueError, match="location"):
            ChaosEvent(at=0, kind="switch-kill", level=-1)

    def test_to_dict_is_compact_per_kind(self):
        loss = ChaosEvent(at=3, kind="loss-rate", rate=0.25)
        assert loss.to_dict() == {"at": 3, "kind": "loss-rate", "rate": 0.25}
        kill = ChaosEvent(at=1, kind="switch-kill", level=2, index=3)
        assert kill.to_dict() == {
            "at": 1, "kind": "switch-kill", "level": 2, "index": 3,
        }
        drop = ChaosEvent(
            at=0, kind="wire-drop", level=1, index=0, direction="up", count=2
        )
        assert set(drop.to_dict()) == {
            "at", "kind", "level", "index", "direction", "count",
        }

    @pytest.mark.parametrize(
        "event",
        [
            ChaosEvent(at=0, kind="wire-drop", level=2, index=1, count=3),
            ChaosEvent(at=4, kind="wire-repair", level=1, direction="down"),
            ChaosEvent(at=2, kind="switch-kill", level=0, index=0),
            ChaosEvent(at=7, kind="switch-repair", level=1, index=1),
            ChaosEvent(at=5, kind="loss-rate", rate=0.125),
        ],
    )
    def test_dict_round_trip(self, event):
        assert ChaosEvent.from_dict(event.to_dict()) == event


class TestChaosSchedule:
    def test_events_sorted_by_time_stably(self):
        a = ChaosEvent(at=5, kind="switch-kill", level=1, index=0)
        b = ChaosEvent(at=1, kind="wire-drop", level=1, index=1)
        c = ChaosEvent(at=5, kind="switch-repair", level=1, index=0)
        sched = ChaosSchedule((a, b, c))
        assert sched.events == (b, a, c)  # ties keep given order

    def test_empty_and_horizon(self):
        assert ChaosSchedule().empty
        assert ChaosSchedule().horizon == -1
        sched = ChaosSchedule((ChaosEvent(at=9, kind="loss-rate", rate=0.1),))
        assert not sched.empty
        assert sched.horizon == 9
        assert len(sched) == 1

    def test_events_at(self):
        a = ChaosEvent(at=2, kind="switch-kill", level=1, index=0)
        b = ChaosEvent(at=4, kind="switch-repair", level=1, index=0)
        sched = ChaosSchedule((a, b))
        assert sched.events_at(2) == (a,)
        assert sched.events_at(3) == ()

    def test_json_round_trip_is_one_line(self):
        sched = random_timeline(FatTree(16), seed=11, events=5)
        text = sched.to_json()
        assert "\n" not in text
        assert ChaosSchedule.from_json(text) == sched


class TestRandomTimeline:
    def test_pure_function_of_seed(self):
        ft = FatTree(16)
        assert random_timeline(ft, seed=3) == random_timeline(ft, seed=3)
        distinct = {random_timeline(ft, seed=s).to_json() for s in range(5)}
        assert len(distinct) > 1

    def test_allow_kills_false_has_no_switch_events(self):
        ft = FatTree(16)
        for seed in range(8):
            sched = random_timeline(ft, seed=seed, events=8, allow_kills=False)
            assert all(not ev.kind.startswith("switch") for ev in sched.events)

    def test_zero_events_is_empty(self):
        assert random_timeline(FatTree(8), seed=0, events=0).empty

    def test_loss_storms_always_reset(self):
        ft = FatTree(16)
        for seed in range(12):
            sched = random_timeline(ft, seed=seed, events=8)
            for ev in sched.events:
                if ev.kind == "loss-rate" and ev.rate > 0:
                    assert any(
                        other.kind == "loss-rate"
                        and other.rate == 0.0
                        and other.at > ev.at
                        for other in sched.events
                    ), f"unterminated loss storm (seed {seed}): {ev}"

    def test_events_stay_on_the_tree(self):
        ft = FatTree(16)
        for seed in range(12):
            for ev in random_timeline(ft, seed=seed, events=8).events:
                if ev.kind in ("wire-drop", "wire-repair"):
                    assert 1 <= ev.level <= ft.depth
                    assert 0 <= ev.index < (1 << ev.level)
                elif ev.kind in ("switch-kill", "switch-repair"):
                    assert 0 <= ev.level < ft.depth
                    assert 0 <= ev.index < (1 << ev.level)

    def test_bad_arguments_rejected(self):
        ft = FatTree(8)
        with pytest.raises(ValueError, match="events"):
            random_timeline(ft, seed=0, events=-1)
        with pytest.raises(ValueError, match="horizon"):
            random_timeline(ft, seed=0, horizon=-1)
