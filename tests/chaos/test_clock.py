"""The chaos clock: applying timelines to a live degraded tree and
predicting channel healing."""

import pytest

from repro.chaos import ChaosClock, ChaosEvent, ChaosSchedule
from repro.core import ConstantCapacity, Direction, FatTree
from repro.faults import DegradedFatTree, FaultModel
from repro.perf import pack_gid

# n=8 binary fat-tree (depth 3) with two wires per channel: small enough
# to reason about gids by hand, capacious enough for partial damage.
N, DEPTH, CAP = 8, 3, 2


def _tree(faults=None):
    return DegradedFatTree(
        FatTree(N, ConstantCapacity(DEPTH, CAP)), faults or FaultModel()
    )


def _clock(events, faults=None):
    tree = _tree(faults)
    return tree, ChaosClock(tree, ChaosSchedule(tuple(events)))


def _gid(level, index, direction=Direction.UP):
    return int(pack_gid(level, index, int(direction is Direction.DOWN)))


class TestAdvance:
    def test_wire_drop_severs_and_repair_restores(self):
        tree, clock = _clock([
            ChaosEvent(at=1, kind="wire-drop", level=3, index=0,
                       direction="up", count=CAP),
            ChaosEvent(at=4, kind="wire-repair", level=3, index=0,
                       direction="up", count=CAP),
        ])
        assert clock.advance_to(0) == ([], [])
        assert clock.applied_events == 0
        zeroed, restored = clock.advance_to(1)
        assert zeroed == [_gid(3, 0)]
        assert restored == []
        assert tree.chan_cap(3, 0, Direction.UP) == 0
        assert tree.chan_cap(3, 0, Direction.DOWN) == CAP  # other direction intact
        assert _gid(3, 0) in clock.zero_gids
        zeroed, restored = clock.advance_to(4)
        assert restored == [_gid(3, 0)]
        assert tree.chan_cap(3, 0, Direction.UP) == CAP
        assert clock.exhausted

    def test_partial_drop_changes_capacity_without_severing(self):
        tree, clock = _clock([
            ChaosEvent(at=0, kind="wire-drop", level=2, index=1,
                       direction="down", count=1),
        ])
        zeroed, restored = clock.advance_to(0)
        assert zeroed == [] and restored == []
        assert clock.changed_gids == [_gid(2, 1, Direction.DOWN)]
        assert tree.chan_cap(2, 1, Direction.DOWN) == CAP - 1

    def test_rewind_rejected(self):
        _, clock = _clock([])
        clock.advance_to(3)
        with pytest.raises(ValueError, match="rewind"):
            clock.advance_to(2)

    def test_switch_kill_severs_every_incident_channel(self):
        tree, clock = _clock([
            ChaosEvent(at=0, kind="switch-kill", level=1, index=0),
        ])
        zeroed, _ = clock.advance_to(0)
        expect = {
            _gid(1, 0, d) for d in (Direction.UP, Direction.DOWN)
        } | {
            _gid(2, x, d)
            for x in (0, 1)
            for d in (Direction.UP, Direction.DOWN)
        }
        assert set(zeroed) == expect
        for level, index in ((1, 0), (2, 0), (2, 1)):
            assert tree.chan_cap(level, index, Direction.UP) == 0
            assert tree.chan_cap(level, index, Direction.DOWN) == 0

    def test_switch_repair_leaves_wire_damage_in_place(self):
        tree, clock = _clock([
            ChaosEvent(at=0, kind="switch-kill", level=1, index=0),
            ChaosEvent(at=0, kind="wire-drop", level=2, index=0,
                       direction="up", count=CAP),
            ChaosEvent(at=2, kind="switch-repair", level=1, index=0),
        ])
        clock.advance_to(0)
        _, restored = clock.advance_to(2)
        # the switch comes back, but channel (2,0) up still has no wires
        assert _gid(2, 0) not in restored
        assert _gid(1, 0) in restored
        assert tree.chan_cap(2, 0, Direction.UP) == 0
        assert tree.chan_cap(1, 0, Direction.UP) == CAP

    def test_static_faults_compose_with_runtime_repair(self):
        faults = FaultModel().kill_wires(3, 1, CAP)
        tree, clock = _clock(
            [ChaosEvent(at=1, kind="wire-repair", level=3, index=1, count=CAP)],
            faults,
        )
        assert {_gid(3, 1, Direction.UP), _gid(3, 1, Direction.DOWN)} <= clock.zero_gids
        _, restored = clock.advance_to(1)
        assert set(restored) == {
            _gid(3, 1, Direction.UP), _gid(3, 1, Direction.DOWN),
        }
        assert tree.chan_cap(3, 1, Direction.UP) == CAP

    def test_loss_rate_override_and_reset(self):
        tree, clock = _clock([
            ChaosEvent(at=2, kind="loss-rate", rate=0.25),
            ChaosEvent(at=5, kind="loss-rate", rate=0.0),
        ])
        assert clock.loss_rate(0.1) == 0.1  # no override yet
        clock.advance_to(2)
        assert clock.loss_rate(0.1) == 0.25
        assert tree.faults.loss_rate == 0.25
        clock.advance_to(5)
        assert clock.loss_rate(0.1) == 0.0


class TestHealCycle:
    def test_scheduled_repair_is_predicted(self):
        _, clock = _clock([
            ChaosEvent(at=1, kind="wire-drop", level=3, index=0, count=CAP),
            ChaosEvent(at=5, kind="wire-repair", level=3, index=0, count=CAP),
        ])
        clock.advance_to(1)
        assert clock.heal_cycle(_gid(3, 0)) == 5
        assert clock.heal_cycle(_gid(3, 0, Direction.DOWN)) == 5

    def test_unrepaired_damage_returns_none(self):
        _, clock = _clock([
            ChaosEvent(at=0, kind="switch-kill", level=0, index=0),
        ])
        clock.advance_to(0)
        assert clock.heal_cycle(_gid(1, 0)) is None

    def test_healthy_channel_heals_now(self):
        _, clock = _clock([
            ChaosEvent(at=1, kind="wire-drop", level=3, index=0, count=CAP),
        ])
        clock.advance_to(1)
        assert clock.heal_cycle(_gid(2, 0)) == 1  # untouched channel

    def test_same_cycle_repair_and_rekill_heals_nothing(self):
        # regression: a repair instantly re-killed in the same cycle is
        # atomic — advance_to writes the net capacity once, so heal_cycle
        # must not report the doomed repair as a healing cycle
        _, clock = _clock([
            ChaosEvent(at=1, kind="switch-kill", level=1, index=0),
            ChaosEvent(at=3, kind="switch-repair", level=1, index=0),
            ChaosEvent(at=3, kind="switch-kill", level=1, index=0),
        ])
        clock.advance_to(1)
        assert clock.heal_cycle(_gid(1, 0)) is None

    def test_heal_after_a_doomed_repair(self):
        _, clock = _clock([
            ChaosEvent(at=1, kind="switch-kill", level=1, index=0),
            ChaosEvent(at=3, kind="switch-repair", level=1, index=0),
            ChaosEvent(at=3, kind="switch-kill", level=1, index=0),
            ChaosEvent(at=6, kind="switch-repair", level=1, index=0),
        ])
        clock.advance_to(1)
        assert clock.heal_cycle(_gid(1, 0)) == 6
