"""Circuit breakers (repro.chaos.health) and the retry backoff policy
(repro.faults.BackoffPolicy)."""

import numpy as np
import pytest

from repro.chaos import BreakerConfig, ChannelHealth
from repro.chaos.health import CLOSED, HALF_OPEN, OPEN
from repro.faults import BackoffPolicy
from repro.obs import Obs

GID = 10


def _fail(health, t, gid=GID):
    health.on_cycle(t, {gid: 2}, {})


def _succeed(health, t, gid=GID):
    health.on_cycle(t, {}, {gid: 1})


def _advance_to_half_open(health, t, gid=GID):
    """Tick blocked_gids forward until the breaker stops blocking."""
    assert health.state_of(gid) == OPEN
    for _ in range(2 * health.config.max_cooldown + 4):
        if gid not in health.blocked_gids(t):
            return t
        t += 1
    raise AssertionError("breaker never re-probed within the capped cooldown")


class TestBreakerConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            BreakerConfig(cooldown=0)
        with pytest.raises(ValueError, match="max_cooldown"):
            BreakerConfig(cooldown=8, max_cooldown=4)


class TestBreakerStateMachine:
    def test_trips_after_threshold_consecutive_failures(self):
        health = ChannelHealth(BreakerConfig(failure_threshold=3, cooldown=2,
                                             max_cooldown=8))
        _fail(health, 0)
        _fail(health, 1)
        assert health.state_of(GID) == CLOSED
        _fail(health, 2)
        assert health.state_of(GID) == OPEN
        assert health.open_count() == 1
        assert GID in health.blocked_gids(3)

    def test_success_resets_the_failure_streak(self):
        health = ChannelHealth(BreakerConfig(failure_threshold=3))
        _fail(health, 0)
        _fail(health, 1)
        _succeed(health, 2)
        _fail(health, 3)
        _fail(health, 4)
        assert health.state_of(GID) == CLOSED

    def test_mixed_cycle_is_not_a_failure(self):
        health = ChannelHealth(BreakerConfig(failure_threshold=1))
        # the channel carried attempts and some succeeded: healthy
        health.on_cycle(0, {GID: 3}, {GID: 1})
        assert health.state_of(GID) == CLOSED
        assert health.transitions == 0

    def test_half_open_success_closes(self):
        health = ChannelHealth(BreakerConfig(failure_threshold=1, cooldown=2,
                                             max_cooldown=8))
        _fail(health, 0)
        t = _advance_to_half_open(health, 1)
        assert health.state_of(GID) == HALF_OPEN
        _succeed(health, t)
        assert health.state_of(GID) == CLOSED

    def test_half_open_failure_reopens_immediately(self):
        health = ChannelHealth(BreakerConfig(failure_threshold=3, cooldown=2,
                                             max_cooldown=8))
        for t in range(3):
            _fail(health, t)
        t = _advance_to_half_open(health, 3)
        # one failed probe suffices, no need for a fresh streak of 3
        _fail(health, t)
        assert health.state_of(GID) == OPEN

    def test_cooldown_is_capped_forever(self):
        config = BreakerConfig(failure_threshold=1, cooldown=2, max_cooldown=4)
        health = ChannelHealth(config)
        t = 0
        for _ in range(8):  # trips double the window, the cap must hold
            _fail(health, t)
            assert health.state_of(GID) == OPEN
            reopened = _advance_to_half_open(health, t + 1)
            assert reopened - (t + 1) <= config.max_cooldown + 1
            t = reopened

    def test_jitter_is_deterministic_per_seed(self):
        def run():
            health = ChannelHealth(
                BreakerConfig(failure_threshold=1, cooldown=4,
                              max_cooldown=32, jitter_seed=7)
            )
            blocked = []
            _fail(health, 0)
            for t in range(1, 48):
                blocked.append(GID in health.blocked_gids(t))
            return blocked

        assert run() == run()

    def test_unknown_channel_is_closed(self):
        health = ChannelHealth()
        assert health.state_of(999) == CLOSED
        assert health.open_count() == 0
        assert health.blocked_gids(0) == set()

    def test_transitions_are_observable(self):
        obs = Obs(enabled=True)
        health = ChannelHealth(BreakerConfig(failure_threshold=1), obs=obs)
        _fail(health, 0)
        assert health.transitions == 1
        assert obs.metrics.counter_value(
            "breaker.transition", from_state=CLOSED, to_state=OPEN
        ) == 1
        events = obs.tracer.select("breaker")
        assert events and events[0]["to_state"] == OPEN


class TestBackoffPolicy:
    def test_window_matches_capped_binary_exponential(self):
        policy = BackoffPolicy(base=1, cap=16)
        assert [policy.window(k) for k in range(1, 7)] == [1, 2, 4, 8, 16, 16]

    def test_huge_attempt_counts_do_not_overflow(self):
        assert BackoffPolicy(base=3, cap=50).window(10_000) == 50

    def test_validation(self):
        with pytest.raises(ValueError, match="base"):
            BackoffPolicy(base=0)
        with pytest.raises(ValueError, match="cap"):
            BackoffPolicy(base=8, cap=4)
        with pytest.raises(ValueError, match="attempts"):
            BackoffPolicy().window(0)

    def test_jitter_rng_defaults_to_the_callers_stream(self):
        fallback = np.random.default_rng(1)
        assert BackoffPolicy().jitter_rng(fallback) is fallback

    def test_seeded_jitter_is_its_own_reproducible_stream(self):
        fallback = np.random.default_rng(1)
        a = BackoffPolicy(jitter_seed=5).jitter_rng(fallback)
        b = BackoffPolicy(jitter_seed=5).jitter_rng(fallback)
        assert a is not fallback
        assert a.integers(0, 100, 8).tolist() == b.integers(0, 100, 8).tolist()
