"""Suite-wide conformance net: every :class:`~repro.core.Schedule` that
any scheduler entry point produces during the test run is immediately
re-validated against the tree and message set it was built from.

The wrappers are installed at conftest import time — before pytest
imports any test module — so even tests that bind entry points with
``from repro.core.scheduler import schedule_theorem1`` get the wrapped
callables.  Each defining module *and* the re-exporting package
namespaces are patched, and an autouse fixture asserts the net is still
in place for every single test.
"""

import functools

import pytest

import repro
import repro.core
import repro.core.exact
import repro.core.greedy
import repro.core.online
import repro.core.reuse_scheduler
import repro.core.scheduler
from repro.core.schedule import Schedule

#: entry point -> every namespace that re-exports it (defining module first)
VALIDATED_ENTRY_POINTS = {
    "schedule_theorem1": (repro.core.scheduler, repro.core, repro),
    "schedule_corollary2": (repro.core.reuse_scheduler, repro.core, repro),
    "schedule_random_rank": (repro.core.online, repro.core),
    "schedule_greedy_first_fit": (repro.core.greedy, repro.core),
    "simulate_online_retry": (repro.core.greedy, repro.core),
    "exact_schedule": (repro.core.exact, repro.core),
}

#: entry point -> schedules validated through the net (suite telemetry)
VALIDATION_COUNTS = {name: 0 for name in VALIDATED_ENTRY_POINTS}


def _validating(name, fn):
    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        result = fn(*args, **kwargs)
        if isinstance(result, Schedule):
            ft = args[0] if args else kwargs.get("ft")
            messages = args[1] if len(args) > 1 else kwargs.get("messages")
            if ft is not None and messages is not None:
                result.validate(ft, messages)
                VALIDATION_COUNTS[name] += 1
        return result

    wrapper.__schedule_validating__ = True
    return wrapper


def _install_validation_net():
    for name, namespaces in VALIDATED_ENTRY_POINTS.items():
        original = getattr(namespaces[0], name)
        if getattr(original, "__schedule_validating__", False):
            continue  # idempotent across pytest re-imports
        wrapped = _validating(name, original)
        for namespace in namespaces:
            setattr(namespace, name, wrapped)


_install_validation_net()


@pytest.fixture(autouse=True)
def _schedule_validation_net():
    """Every test runs with the validation wrappers installed."""
    for name, namespaces in VALIDATED_ENTRY_POINTS.items():
        for namespace in namespaces:
            fn = getattr(namespace, name)
            assert getattr(fn, "__schedule_validating__", False), (
                f"{namespace.__name__}.{name} lost its validation wrapper"
            )
    yield
