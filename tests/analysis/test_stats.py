"""Tests for traffic and schedule statistics."""

import numpy as np
import pytest

from repro.analysis import schedule_stats, traffic_stats
from repro.core import (
    ConstantCapacity,
    FatTree,
    MessageSet,
    UniversalCapacity,
    schedule_theorem1,
)
from repro.workloads import local_traffic, uniform_random


class TestTrafficStats:
    def test_empty(self):
        ft = FatTree(16)
        ts = traffic_stats(ft, MessageSet.empty(16))
        assert ts.messages == 0
        assert ts.mean_path_length == 0.0
        assert ts.locality == 1.0

    def test_self_messages_counted(self):
        ft = FatTree(16)
        ts = traffic_stats(ft, MessageSet([3, 0], [3, 1], 16))
        assert ts.self_messages == 1

    def test_lca_histogram(self):
        ft = FatTree(8)
        # one sibling pair (LCA level 2), one cross-root (level 0)
        m = MessageSet([0, 0], [1, 7], 8)
        ts = traffic_stats(ft, m)
        assert ts.lca_histogram[2] == 1
        assert ts.lca_histogram[0] == 1
        assert ts.lca_histogram[1] == 0

    def test_mean_path_length(self):
        ft = FatTree(8)
        m = MessageSet([0, 0], [1, 7], 8)  # paths of length 2 and 6
        ts = traffic_stats(ft, m)
        assert ts.mean_path_length == pytest.approx(4.0)

    def test_locality_orders_workloads(self):
        ft = FatTree(64)
        loc = traffic_stats(ft, local_traffic(64, 500, decay=0.3, seed=0))
        glo = traffic_stats(ft, uniform_random(64, 500, seed=0))
        assert loc.locality > glo.locality
        assert loc.top_level_share < glo.top_level_share

    def test_sibling_traffic_has_full_locality(self):
        ft = FatTree(16)
        m = MessageSet.from_pairs([(i, i ^ 1) for i in range(16)], 16)
        ts = traffic_stats(ft, m)
        assert ts.mean_path_length == 2.0
        assert ts.top_level_share == 0.0

    def test_mismatched_n(self):
        with pytest.raises(ValueError):
            traffic_stats(FatTree(8), MessageSet([0], [1], 16))


class TestScheduleStats:
    def test_empty_schedule(self):
        ft = FatTree(8)
        sched = schedule_theorem1(ft, MessageSet.empty(8))
        ss = schedule_stats(ft, sched)
        assert ss.cycles == 0
        assert ss.mean_peak_utilisation == 0.0

    def test_saturating_schedule_hits_peak_one(self):
        """Theorem 1 halves until pieces fit; on unit capacities every
        cycle saturates some channel."""
        ft = FatTree(16, ConstantCapacity(4, 1))
        m = MessageSet([0] * 6, [15] * 6, 16)
        sched = schedule_theorem1(ft, m)
        ss = schedule_stats(ft, sched)
        assert ss.mean_peak_utilisation == 1.0

    def test_counts_match_schedule(self):
        ft = FatTree(32, UniversalCapacity(32, 16, strict=False))
        m = uniform_random(32, 200, seed=1)
        sched = schedule_theorem1(ft, m)
        ss = schedule_stats(ft, sched)
        assert ss.cycles == sched.num_cycles
        assert ss.messages == sched.total_messages()
        lo, mean, hi = ss.cycle_sizes
        assert lo <= mean <= hi

    def test_level_utilisation_bounded(self):
        ft = FatTree(32)
        m = uniform_random(32, 300, seed=2)
        sched = schedule_theorem1(ft, m)
        ss = schedule_stats(ft, sched)
        for k, util in ss.level_utilisation.items():
            assert 0.0 <= util <= 1.0, k

    def test_utilisation_higher_on_tight_trees(self):
        """Narrower channels are driven harder by the same traffic."""
        m = uniform_random(64, 400, seed=3)
        wide = FatTree(64)
        narrow = FatTree(64, UniversalCapacity(64, 16))
        u_wide = schedule_stats(wide, schedule_theorem1(wide, m))
        u_narrow = schedule_stats(narrow, schedule_theorem1(narrow, m))
        assert (
            u_narrow.level_utilisation[1] >= u_wide.level_utilisation[1]
        )
