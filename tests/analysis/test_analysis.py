"""Tests for the analysis helpers (bounds, fits, sweeps, tables)."""

import time

import numpy as np
import pytest

from repro.analysis import (
    bounds,
    fit_loglog,
    format_table,
    growth_ratios,
    sweep,
)


class TestBounds:
    def test_lg_clamps(self):
        assert bounds.lg(1) == 1.0
        assert bounds.lg(0.5) == 1.0
        assert bounds.lg(1024) == 10.0

    def test_theorem1(self):
        assert bounds.theorem1_cycles(3.0, 256) == 2 * 3 * 8

    def test_corollary2(self):
        assert bounds.corollary2_cycles(5.0, 2.0) == 2 * 10
        with pytest.raises(ValueError):
            bounds.corollary2_cycles(1.0, 1.0)

    def test_theorem10_cube_log(self):
        assert bounds.theorem10_slowdown(256, 1.0) == 8 ** 3

    def test_corollary9(self):
        assert bounds.corollary9_blowup(2.0) == 8.0
        with pytest.raises(ValueError):
            bounds.corollary9_blowup(3.0)

    def test_volume_comparisons(self):
        n = 1024
        assert bounds.hypercube_volume(n) == n ** 1.5
        assert bounds.planar_volume(n) == n

    def test_theorem5(self):
        assert bounds.theorem5_decay() == pytest.approx(4 ** (1 / 3))
        assert bounds.theorem5_root_bandwidth(1000.0, 1.0) == pytest.approx(100.0)


class TestFit:
    def test_recovers_exponent(self):
        xs = [2 ** k for k in range(4, 12)]
        ys = [7.0 * x ** 1.5 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(1.5)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_loglog([1, 2, 4, 8], [3, 6, 12, 24])
        assert fit.predict(16) == pytest.approx(48.0)

    def test_noisy_data_r2_below_one(self):
        rng = np.random.default_rng(0)
        xs = np.arange(10, 100, 10)
        ys = xs ** 2.0 * rng.uniform(0.8, 1.2, xs.size)
        fit = fit_loglog(xs, ys)
        assert 1.8 < fit.slope < 2.2
        assert fit.r_squared < 1.0

    def test_validates_input(self):
        with pytest.raises(ValueError):
            fit_loglog([1], [1])
        with pytest.raises(ValueError):
            fit_loglog([1, 0], [1, 1])

    def test_growth_ratios(self):
        assert growth_ratios([1, 2, 4]) == [2.0, 2.0]
        with pytest.raises(ValueError):
            growth_ratios([1, 0])


def _double(n):
    """Module-level so the process-pool sweep can pickle it."""
    return {"double": 2 * n}


def _fail_on_two(n):
    if n == 2:
        raise RuntimeError("boom")
    return {"double": 2 * n}


def _mark_and_sleep(tag, outdir, fail):
    """Leave a marker file proving this parameter set started running."""
    (outdir / f"ran-{tag}").touch()
    if fail:
        raise RuntimeError(f"boom at {tag}")
    time.sleep(0.3)
    return {"tag": tag}


def _global_rng_draw(seed, n):
    """Deliberately draws from the *global* RNGs.

    This is the regression target for sweep's per-parameter-set
    re-seeding: forked pool workers inherit the parent's global RNG
    state, so without re-seeding these rows would depend on which worker
    ran them.  (Library code must never do this — the rng-discipline
    lint rule bans it — but sweep guards against third-party callables
    that do.)
    """
    import random

    return {
        "py": random.random(),
        "np": float(np.random.random()),
        "draws": int(np.random.randint(0, 1000, size=n).sum()),
    }


class TestSweepAndTables:
    def test_sweep_merges_params_and_results(self):
        rows = sweep(lambda n: {"double": 2 * n}, [{"n": 1}, {"n": 3}])
        assert rows == [{"n": 1, "double": 2}, {"n": 3, "double": 6}]

    def test_parallel_sweep_matches_serial_in_order(self):
        params = [{"n": i} for i in range(8)]
        assert sweep(_double, params, n_jobs=2) == sweep(_double, params)

    def test_serial_error_capture(self):
        rows = sweep(
            _fail_on_two, [{"n": 1}, {"n": 2}, {"n": 3}], on_error="capture"
        )
        assert rows[0] == {"n": 1, "double": 2}
        assert rows[1] == {"n": 2, "error": "RuntimeError: boom"}
        assert rows[2] == {"n": 3, "double": 6}

    def test_parallel_error_capture(self):
        rows = sweep(
            _fail_on_two,
            [{"n": 1}, {"n": 2}, {"n": 3}],
            n_jobs=2,
            on_error="capture",
        )
        assert rows[1]["error"] == "RuntimeError: boom"
        assert rows[2] == {"n": 3, "double": 6}

    def test_error_raises_by_default(self):
        with pytest.raises(RuntimeError):
            sweep(_fail_on_two, [{"n": 2}])

    def test_parallel_error_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            sweep(_fail_on_two, [{"n": 1}, {"n": 2}, {"n": 3}], n_jobs=2)

    def test_parallel_raise_cancels_pending_param_sets(self, tmp_path):
        """An early failure with on_error="raise" must not run the whole
        remaining sweep: parameter sets that have not started when the
        exception propagates are cancelled, not drained."""
        total = 16
        params = [
            {"tag": i, "outdir": tmp_path, "fail": i == 0} for i in range(total)
        ]
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="boom at 0"):
            sweep(_mark_and_sleep, params, n_jobs=2)
        elapsed = time.monotonic() - t0
        started = len(list(tmp_path.glob("ran-*")))
        assert started >= 1  # the failing set certainly ran
        # only in-flight and already-queued sets may have started; running
        # all 15 survivors at 0.3 s each on 2 workers would take > 2 s
        assert started < total
        assert elapsed < 2.0

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError):
            sweep(_double, [], on_error="ignore")
        with pytest.raises(ValueError):
            sweep(_double, [], n_jobs=0)

    def test_parallel_global_rng_matches_serial(self):
        # Regression: forked workers inherit the parent's global RNG
        # state, so before per-parameter-set re-seeding these rows
        # depended on worker scheduling.  With it, parallel == serial,
        # row for row.
        params = [{"seed": s, "n": 8} for s in range(6)]
        serial = sweep(_global_rng_draw, params)
        parallel = sweep(_global_rng_draw, params, n_jobs=2)
        assert parallel == serial

    def test_reseeded_rows_are_pure_functions_of_their_seed(self):
        params = [{"seed": 7, "n": 4}]
        assert sweep(_global_rng_draw, params) == sweep(_global_rng_draw, params)

    def test_sweep_without_seed_param_leaves_global_rng_alone(self):
        import random

        random.seed(12345)
        before = random.getstate()
        sweep(_double, [{"n": 1}])
        assert random.getstate() == before

    def test_format_table_alignment(self):
        out = format_table(
            [{"n": 64, "lam": 1.5}, {"n": 1024, "lam": 12.25}],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "1024" in lines[4]
        assert all(len(l) == len(lines[1]) for l in lines[2:])

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_table_floats(self):
        out = format_table([{"x": 0.000123, "y": 123456.0, "z": True}])
        assert "0.000123" in out and "yes" in out

    def test_column_selection(self):
        out = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]
