"""Backfilled unit tests for the analysis helpers: log-log fitting on
clean and degenerate data, growth ratios, and monotonicity of the
Theorem 4/5 closed-form bounds."""

import math

import pytest

from repro.analysis import fit_loglog, growth_ratios
from repro.analysis.bounds import (
    theorem4_components,
    theorem4_volume,
    theorem5_root_bandwidth,
)


class TestFitLogLog:
    def test_recovers_exact_power_law(self):
        xs = [2, 4, 8, 16, 32]
        ys = [7.0 * x**1.5 for x in xs]
        fit = fit_loglog(xs, ys)
        assert fit.slope == pytest.approx(1.5)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(64) == pytest.approx(7.0 * 64**1.5)

    def test_constant_data_has_zero_slope(self):
        fit = fit_loglog([1, 2, 4, 8], [5.0, 5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0)
        # zero total variance: r² defined as 1 by convention
        assert fit.r_squared == pytest.approx(1.0)

    def test_single_point_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_loglog([2], [4])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_loglog([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="at least two"):
            fit_loglog([1, 2, 3], [1, 2])

    @pytest.mark.parametrize(
        "xs,ys",
        [([0, 2], [1, 2]), ([1, 2], [0, 2]), ([-1, 2], [1, 2]), ([1, 2], [1, -2])],
    )
    def test_nonpositive_data_rejected(self, xs, ys):
        with pytest.raises(ValueError, match="positive"):
            fit_loglog(xs, ys)


class TestGrowthRatios:
    def test_geometric_series(self):
        assert growth_ratios([1, 2, 4, 8]) == pytest.approx([2.0, 2.0, 2.0])

    def test_decay(self):
        assert growth_ratios([8.0, 4.0, 1.0]) == pytest.approx([0.5, 0.25])

    def test_single_value_gives_no_ratios(self):
        assert growth_ratios([3.0]) == []

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="nonzero"):
            growth_ratios([1.0, 0.0, 2.0])


class TestBoundMonotonicity:
    NS = [64, 256, 1024, 4096]

    def test_theorem4_components_monotone_in_n(self):
        values = [theorem4_components(n, w=n) for n in self.NS]
        assert values == sorted(values)
        assert values[0] > 0

    def test_theorem4_components_monotone_in_w(self):
        n = 256
        values = [theorem4_components(n, w) for w in [16, 64, 256]]
        assert values == sorted(values)

    def test_theorem4_volume_monotone_in_w(self):
        n = 4096
        values = [theorem4_volume(n, w) for w in [8, 32, 128, 512]]
        assert values == sorted(values)
        assert all(v > 0 for v in values)

    def test_theorem4_volume_three_halves_exponent(self):
        # volume is exactly (w·lg(n/w))^{3/2} up to a constant: fitting
        # against that composite variable recovers slope 3/2
        from repro.analysis.bounds import lg

        n = 1 << 20
        ws = [16, 32, 64, 128]
        xs = [w * lg(n / w) for w in ws]
        fit = fit_loglog(xs, [theorem4_volume(n, w) for w in ws])
        assert fit.slope == pytest.approx(1.5)

    def test_theorem5_root_bandwidth_monotone_in_volume(self):
        vols = [10.0, 100.0, 1000.0, 10_000.0]
        values = [theorem5_root_bandwidth(v) for v in vols]
        assert values == sorted(values)

    def test_theorem5_root_bandwidth_two_thirds_exponent(self):
        # doubling volume multiplies w_0 by 2^{2/3}
        ratio = theorem5_root_bandwidth(2000.0) / theorem5_root_bandwidth(1000.0)
        assert ratio == pytest.approx(2 ** (2.0 / 3.0))
        assert math.isfinite(theorem5_root_bandwidth(1e12))
