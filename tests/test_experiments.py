"""Tests for the experiment registry (the `python -m repro experiment`
backend)."""

import pytest

from repro.experiments import EXPERIMENTS, experiment_ids, run_experiment


class TestRegistry:
    def test_twenty_experiments_registered(self):
        assert experiment_ids() == [f"e{i:02d}" for i in range(1, 22)]

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("e99")

    def test_every_experiment_documented(self):
        for eid, fn in EXPERIMENTS.items():
            assert fn.__doc__, eid


@pytest.mark.parametrize("eid", sorted(EXPERIMENTS), ids=str)
def test_experiment_produces_tables(eid):
    """Every experiment runs and yields non-empty, well-formed sections."""
    sections = run_experiment(eid)
    assert sections, eid
    for title, rows in sections:
        assert title.startswith("E"), title
        assert rows, title
        keys = set(rows[0])
        assert all(set(r) == keys for r in rows), title


def test_cli_experiment_command(capsys):
    from repro.cli import main

    assert main(["experiment", "e01"]) == 0
    out = capsys.readouterr().out
    assert "E1 / Fig. 1" in out


def test_cli_unknown_experiment_fails_cleanly(capsys):
    from repro.cli import main

    assert main(["experiment", "e99"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
