"""Tests for the trace ring buffer and its JSONL round-trip."""

import numpy as np
import pytest

from repro.obs import NULL_OBS, Obs, Tracer, get_default_obs, use_obs


class TestEmit:
    def test_events_are_typed_and_sequenced(self):
        tr = Tracer()
        tr.emit("cycle", t=0, delivered=3)
        tr.emit("cache", op="pathindex")
        assert [e["type"] for e in tr.events] == ["cycle", "cache"]
        assert [e["seq"] for e in tr.events] == [0, 1]
        assert tr.events[0]["delivered"] == 3

    def test_select(self):
        tr = Tracer()
        tr.emit("a")
        tr.emit("b")
        tr.emit("a")
        assert len(tr.select("a")) == 2
        assert tr.select("zzz") == []

    def test_disabled_is_a_noop(self):
        tr = Tracer(enabled=False)
        tr.emit("cycle")
        assert len(tr) == 0

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(maxlen=3)
        for i in range(5):
            tr.emit("e", i=i)
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [e["i"] for e in tr.events] == [2, 3, 4]
        assert [e["seq"] for e in tr.events] == [2, 3, 4]  # seq keeps counting

    def test_bad_maxlen_rejected(self):
        with pytest.raises(ValueError):
            Tracer(maxlen=0)

    def test_clear(self):
        tr = Tracer()
        tr.emit("e")
        tr.clear()
        assert len(tr) == 0 and tr.dropped == 0
        tr.emit("e")
        assert tr.events[0]["seq"] == 0


class TestSanitisation:
    def test_numpy_scalars_become_python(self):
        tr = Tracer()
        tr.emit("e", a=np.int64(3), b=np.float64(0.5), c=np.bool_(True))
        e = tr.events[0]
        assert type(e["a"]) is int and type(e["b"]) is float
        assert e["c"] is True

    def test_arrays_become_lists(self):
        tr = Tracer()
        tr.emit("e", v=np.arange(3), nested=[np.int64(1), (2, 3)])
        assert tr.events[0]["v"] == [0, 1, 2]
        assert tr.events[0]["nested"] == [1, [2, 3]]

    def test_unknown_objects_stringify(self):
        tr = Tracer()
        tr.emit("e", x=object())
        assert isinstance(tr.events[0]["x"], str)


class TestJsonlRoundTrip:
    def test_roundtrip_is_identity(self):
        tr = Tracer()
        tr.emit("cycle", t=0, delivered=np.int64(5), util=np.float64(0.25))
        tr.emit("kernel_exit", kernel="k", seconds=0.001, ok=True)
        assert Tracer.from_jsonl(tr.to_jsonl()) == tr.events

    def test_file_roundtrip(self, tmp_path):
        tr = Tracer()
        for t in range(4):
            tr.emit("cycle", t=t)
        path = tmp_path / "trace.jsonl"
        assert tr.export_jsonl(path) == 4
        assert Tracer.read_jsonl(path) == tr.events

    def test_blank_lines_skipped(self):
        assert Tracer.from_jsonl('\n{"type":"e","seq":0}\n\n') == [
            {"type": "e", "seq": 0}
        ]

    def test_bad_json_rejected_with_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            Tracer.from_jsonl('{"type":"e","seq":0}\nnot json\n')

    def test_untyped_event_rejected(self):
        with pytest.raises(ValueError, match="typed"):
            Tracer.from_jsonl('{"seq":0}\n')
        with pytest.raises(ValueError, match="typed"):
            Tracer.from_jsonl("[1,2]\n")


class TestObsFacade:
    def test_default_components(self):
        obs = Obs(enabled=True)
        assert obs.enabled
        obs = Obs(enabled=False)
        assert not obs.enabled

    def test_mixed_components(self):
        from repro.obs import MetricsRegistry

        obs = Obs(MetricsRegistry(enabled=True), Tracer(enabled=False))
        assert obs.enabled  # either component keeps it on
        obs.tracer.emit("e")
        assert len(obs.tracer) == 0

    def test_kernel_span_times_and_traces(self):
        obs = Obs(enabled=True)
        with obs.kernel("work", n=8):
            pass
        enter, exit_ = obs.tracer.events
        assert enter["type"] == "kernel_enter" and enter["n"] == 8
        assert exit_["type"] == "kernel_exit" and exit_["ok"] is True
        assert exit_["seconds"] >= 0.0
        assert obs.metrics.histogram("kernel.seconds", kernel="work").count == 1

    def test_kernel_span_records_failure(self):
        obs = Obs(enabled=True)
        with pytest.raises(RuntimeError):
            with obs.kernel("work"):
                raise RuntimeError("boom")
        assert obs.tracer.select("kernel_exit")[0]["ok"] is False

    def test_disabled_kernel_span_is_noop(self):
        before = len(NULL_OBS.tracer)
        with NULL_OBS.kernel("work"):
            pass
        assert len(NULL_OBS.tracer) == before

    def test_default_obs_scoping(self):
        assert get_default_obs() is NULL_OBS
        mine = Obs(enabled=True)
        with use_obs(mine):
            assert get_default_obs() is mine
            with use_obs(NULL_OBS):
                assert get_default_obs() is NULL_OBS
            assert get_default_obs() is mine
        assert get_default_obs() is NULL_OBS

    def test_use_obs_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_obs(Obs(enabled=True)):
                raise RuntimeError("boom")
        assert get_default_obs() is NULL_OBS
