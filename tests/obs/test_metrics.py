"""Tests for the metrics registry (repro.obs.metrics)."""

import math
import pickle

import pytest

from repro.obs import HistogramData, MetricsRegistry
from repro.obs.metrics import _bucket_of


class TestBuckets:
    def test_powers_of_two_land_in_own_bucket(self):
        # bucket e holds (2**(e-1), 2**e]
        assert _bucket_of(1.0) == 0
        assert _bucket_of(2.0) == 1
        assert _bucket_of(4.0) == 2
        assert _bucket_of(1024.0) == 10

    def test_interior_values(self):
        assert _bucket_of(1.5) == 1
        assert _bucket_of(3.0) == 2
        assert _bucket_of(0.75) == 0
        assert _bucket_of(0.5) == -1

    def test_non_positive_underflow(self):
        assert _bucket_of(0.0) == _bucket_of(-5.0) == -1074

    def test_bucket_edges_exhaustive(self):
        for e in range(-10, 11):
            assert _bucket_of(2.0 ** e) == e
            assert _bucket_of(2.0 ** e * 1.0001) == e + 1


class TestHistogramData:
    def test_observe_accumulates(self):
        h = HistogramData()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_mean_is_zero(self):
        assert HistogramData().mean == 0.0

    def test_combine(self):
        a, b = HistogramData(), HistogramData()
        for v in (1.0, 8.0):
            a.observe(v)
        b.observe(0.25)
        a.combine(b)
        assert a.count == 3
        assert a.min == 0.25 and a.max == 8.0
        assert sum(a.buckets.values()) == 3

    def test_dict_roundtrip(self):
        h = HistogramData()
        for v in (0.1, 1.0, 17.0):
            h.observe(v)
        back = HistogramData.from_dict(h.as_dict())
        assert back.count == h.count
        assert back.total == h.total
        assert back.min == h.min and back.max == h.max
        assert back.buckets == h.buckets

    def test_empty_dict_roundtrip(self):
        back = HistogramData.from_dict(HistogramData().as_dict())
        assert back.count == 0
        assert back.min == math.inf and back.max == -math.inf


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("msgs", scheduler="a")
        reg.inc("msgs", 4, scheduler="a")
        reg.inc("msgs", scheduler="b")
        assert reg.counter_value("msgs", scheduler="a") == 5
        assert reg.counter_value("msgs", scheduler="b") == 1
        assert reg.counter_value("msgs", scheduler="zzz") == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", level=1, direction="up")
        reg.inc("x", direction="up", level=1)
        assert reg.counter_value("x", level=1, direction="up") == 2

    def test_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.set_gauge("depth", 3)
        reg.set_gauge("depth", 7)
        assert reg.gauge_value("depth") == 7
        assert reg.gauge_value("missing", default=-1) == -1

    def test_histograms(self):
        reg = MetricsRegistry()
        for v in (0.25, 0.5, 1.0):
            reg.observe("util", v, level=2)
        h = reg.histogram("util", level=2)
        assert h.count == 3
        assert reg.histogram("util", level=99) is None

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1.0)
        assert len(reg) == 0
        assert reg.counter_value("c") == 0

    def test_series_yields_every_kind(self):
        reg = MetricsRegistry()
        reg.inc("c", scheduler="s")
        reg.set_gauge("g", 2.0)
        reg.observe("h", 1.0, level=1)
        kinds = {(kind, name) for kind, name, _, _ in reg.series()}
        assert kinds == {("counter", "c"), ("gauge", "g"), ("histogram", "h")}
        labels = {
            name: labels for _, name, labels, _ in reg.series()
        }
        assert labels["c"] == {"scheduler": "s"}
        assert labels["g"] == {}

    def test_snapshot_is_picklable_and_named(self):
        reg = MetricsRegistry()
        reg.inc("msgs.delivered", 10, scheduler="rr")
        reg.observe("util", 0.5, direction="up", level=3)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap["counters"]["msgs.delivered{scheduler=rr}"] == 10
        # labels render sorted by key
        assert snap["histograms"]["util{direction=up,level=3}"]["count"] == 1

    def test_merge_adds_counters_and_combines_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 2, k="x")
        b.inc("c", 3, k="x")
        b.inc("c", 1, k="y")
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        b.set_gauge("g", 9)
        a.merge(b)
        assert a.counter_value("c", k="x") == 5
        assert a.counter_value("c", k="y") == 1
        assert a.histogram("h").count == 2
        assert a.gauge_value("g") == 9

    def test_clear(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.clear()
        assert len(reg) == 0


class TestNameRendering:
    @pytest.mark.parametrize(
        "labels,rendered",
        [
            ({}, "n"),
            ({"a": 1}, "n{a=1}"),
            ({"b": "y", "a": "x"}, "n{a=x,b=y}"),
        ],
    )
    def test_series_name(self, labels, rendered):
        reg = MetricsRegistry()
        reg.inc("n", **labels)
        assert list(reg.snapshot()["counters"]) == [rendered]
