"""End-to-end observability: traces agree with what the routers return.

The acceptance contract: with tracing enabled, a JSONL trace of
``schedule_random_rank`` at n=256 round-trips (export → import →
identical event list) and its per-cycle delivered / congested / deferred
counts match the returned schedule exactly — while the schedule itself
is bit-identical to an untraced run (instrumentation never touches the
RNG).
"""

import numpy as np
import pytest

from repro.analysis import sweep
from repro.core import (
    FatTree,
    schedule_greedy_first_fit,
    schedule_random_rank,
    schedule_theorem1,
    simulate_online_retry,
)
from repro.hardware import run_store_and_forward, run_until_delivered
from repro.obs import Obs, Tracer, use_obs
from repro.workloads import uniform_random


def _assert_cycle_accounting(events, sched, pending0):
    """Each cycle event's counts partition the then-pending messages and
    its delivered count matches the schedule."""
    assert len(events) == sched.num_cycles
    pending = pending0
    for t, e in enumerate(events):
        assert e["t"] == t
        assert e["delivered"] == len(sched.cycles[t])
        assert e["delivered"] + e["congested"] + e["deferred"] == pending
        pending -= e["delivered"]
    assert pending == 0


class TestRandomRankAcceptance:
    def test_trace_roundtrips_and_matches_schedule(self, tmp_path):
        n = 256
        ft = FatTree(n)
        m = uniform_random(n, 512, seed=3)
        obs = Obs(enabled=True)
        sched = schedule_random_rank(ft, m, seed=7, loss_rate=0.05, obs=obs)

        # untraced run is bit-identical: instrumentation is RNG-neutral
        plain = schedule_random_rank(ft, m, seed=7, loss_rate=0.05)
        assert plain.num_cycles == sched.num_cycles
        for a, b in zip(plain.cycles, sched.cycles):
            assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

        # JSONL export → import is the identity
        path = tmp_path / "trace.jsonl"
        obs.tracer.export_jsonl(path)
        assert Tracer.read_jsonl(path) == obs.tracer.events

        # per-cycle accounting partitions the pending messages
        routable = m.without_self_messages()
        _assert_cycle_accounting(
            obs.tracer.select("cycle"), sched, len(routable)
        )

        # counters agree with the trace totals
        assert obs.metrics.counter_value(
            "messages.delivered", scheduler="random_rank"
        ) == len(routable)
        congested = sum(e["congested"] for e in obs.tracer.select("cycle"))
        assert (
            obs.metrics.counter_value("messages.retried", scheduler="random_rank")
            == congested
        )

    def test_utilisation_is_a_fraction_per_level(self):
        ft = FatTree(64)
        m = uniform_random(64, 256, seed=1)
        obs = Obs(enabled=True)
        schedule_random_rank(ft, m, obs=obs)
        seen = 0
        for k in range(1, ft.depth + 1):
            for direction in ("up", "down"):
                h = obs.metrics.histogram(
                    "channel.utilization",
                    level=k,
                    direction=direction,
                    scheduler="random_rank",
                )
                if h is None:
                    continue
                seen += 1
                assert 0.0 <= h.min and h.max <= 1.0
        assert seen  # a dense workload exercises some level

    def test_default_obs_resolution(self):
        """Passing no obs= routes through the scoped module default."""
        ft = FatTree(32)
        m = uniform_random(32, 64, seed=0)
        obs = Obs(enabled=True)
        with use_obs(obs):
            sched = schedule_random_rank(ft, m)
        assert len(obs.tracer.select("cycle")) == sched.num_cycles

    def test_kernel_span_present(self):
        ft = FatTree(32)
        m = uniform_random(32, 64, seed=0)
        obs = Obs(enabled=True)
        schedule_random_rank(ft, m, obs=obs)
        exits = obs.tracer.select("kernel_exit")
        assert any(e["kernel"] == "schedule_random_rank" for e in exits)
        assert all(e["ok"] for e in exits)


class TestOtherSchedulers:
    @pytest.mark.parametrize(
        "run",
        [
            lambda ft, m, obs: schedule_theorem1(ft, m, obs=obs),
            lambda ft, m, obs: schedule_greedy_first_fit(ft, m, obs=obs),
            lambda ft, m, obs: simulate_online_retry(ft, m, seed=2, obs=obs),
        ],
        ids=["theorem1", "greedy", "online-retry"],
    )
    def test_cycle_accounting(self, run):
        ft = FatTree(64)
        m = uniform_random(64, 200, seed=5)
        obs = Obs(enabled=True)
        sched = run(ft, m, obs)
        events = obs.tracer.select("cycle")
        assert len(events) == sched.num_cycles
        for t, e in enumerate(events):
            assert e["delivered"] == len(sched.cycles[t])

    def test_online_retry_traced_is_bit_identical(self):
        ft = FatTree(64)
        m = uniform_random(64, 200, seed=5)
        plain = simulate_online_retry(ft, m, seed=9)
        traced = simulate_online_retry(ft, m, seed=9, obs=Obs(enabled=True))
        assert plain.num_cycles == traced.num_cycles
        for a, b in zip(plain.cycles, traced.cycles):
            assert np.array_equal(a.src, b.src) and np.array_equal(a.dst, b.dst)

    def test_switchsim_accounting_matches_reports(self):
        ft = FatTree(32)
        m = uniform_random(32, 100, seed=4)
        obs = Obs(enabled=True)
        out = run_until_delivered(ft, m, seed=4, obs=obs)
        events = obs.tracer.select("cycle")
        assert len(events) == out.cycles
        for e, r in zip(events, out.reports):
            assert e["delivered"] == len(r.delivered)
            assert e["congested"] == len(r.congested)
            assert e["deferred"] == len(r.deferred)

    def test_buffered_steps_account_for_every_delivery(self):
        ft = FatTree(32)
        m = uniform_random(32, 100, seed=6)
        obs = Obs(enabled=True)
        out = run_store_and_forward(ft, m, obs=obs)
        steps = obs.tracer.select("step")
        assert len(steps) == out.makespan
        routable = m.without_self_messages()
        assert sum(e["delivered"] for e in steps) == len(routable)
        max_depth = int(
            obs.metrics.gauge_value("queue.max_depth", simulator="store_and_forward")
        )
        assert max_depth == out.max_queue_depth


class TestPathIndexCacheEvents:
    def test_hit_and_miss_counted(self):
        from repro.perf import clear_path_index_cache

        ft = FatTree(32)
        m = uniform_random(32, 64, seed=0)
        clear_path_index_cache(ft)
        obs = Obs(enabled=True)
        schedule_random_rank(ft, m, obs=obs)
        schedule_random_rank(ft, m, seed=1, obs=obs)
        assert obs.metrics.counter_value("pathindex.cache", result="miss") == 1
        assert obs.metrics.counter_value("pathindex.cache", result="hit") == 1
        ops = [e["result"] for e in obs.tracer.select("cache")]
        assert ops == ["miss", "hit"]


def _routed_row(n, messages, seed):
    """Module-level so the process-pool sweep can pickle it."""
    ft = FatTree(n)
    m = uniform_random(n, messages, seed=seed)
    sched = schedule_random_rank(ft, m, seed=seed)
    return {"cycles": sched.num_cycles}


class TestSweepMetrics:
    def test_serial_rows_carry_snapshots(self):
        rows = sweep(
            _routed_row,
            [{"n": 16, "messages": 32, "seed": 0}],
            metrics=True,
        )
        (row,) = rows
        snap = row["metrics"]
        assert (
            snap["counters"]["messages.delivered{scheduler=random_rank}"]
            == sum(1 for s, d in uniform_random(16, 32, seed=0) if s != d)
        )

    def test_parallel_workers_ship_metrics_back(self):
        params = [{"n": 16, "messages": 32, "seed": s} for s in range(3)]
        rows = sweep(_routed_row, params, n_jobs=2, metrics=True)
        assert [r["seed"] for r in rows] == [0, 1, 2]
        for row in rows:
            assert row["metrics"]["counters"]  # non-empty: routing was observed

    def test_metrics_off_by_default(self):
        rows = sweep(_routed_row, [{"n": 16, "messages": 32, "seed": 0}])
        assert "metrics" not in rows[0]
