"""Tests for the workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import FatTree, MessageSet, channel_loads, load_factor
from repro.workloads import (
    all_to_all,
    bisection_stress,
    bit_reversal,
    butterfly_exchange,
    cyclic_shift,
    fem_message_set,
    grid_fem_edges,
    hotspot,
    local_traffic,
    planar_bisection_bound,
    random_permutation,
    tornado,
    transpose,
    triangulated_fem_edges,
    uniform_random,
)


class TestPermutations:
    def test_random_permutation_is_permutation(self):
        m = random_permutation(64, seed=0)
        assert sorted(m.dst.tolist()) == list(range(64))

    def test_random_permutation_seeded(self):
        assert list(random_permutation(32, 1)) == list(random_permutation(32, 1))

    def test_bit_reversal_involution(self):
        m = bit_reversal(64)
        rev = {s: d for s, d in m}
        for s, d in m:
            assert rev[d] == s

    def test_bit_reversal_known_values(self):
        m = bit_reversal(8)
        mapping = dict(m)
        assert mapping[1] == 4 and mapping[3] == 6 and mapping[7] == 7

    def test_transpose_involution(self):
        m = transpose(16)
        mp = dict(m)
        for s, d in m:
            assert mp[d] == s

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose(8)

    def test_cyclic_shift(self):
        m = cyclic_shift(8, 3)
        assert dict(m)[7] == 2

    def test_butterfly_exchange(self):
        m = butterfly_exchange(8, 1)
        assert dict(m)[0] == 2

    def test_butterfly_stage_validated(self):
        with pytest.raises(ValueError):
            butterfly_exchange(8, 3)

    def test_tornado_is_permutation(self):
        m = tornado(16)
        assert sorted(m.dst.tolist()) == list(range(16))


class TestRandomTraffic:
    def test_uniform_random_shape(self):
        m = uniform_random(32, 500, seed=0)
        assert len(m) == 500 and m.n == 32

    def test_hotspot_concentrates(self):
        m = hotspot(32, 1000, target=5, fraction=0.7, seed=0)
        hot_share = np.mean(m.dst == 5)
        assert hot_share > 0.6

    def test_hotspot_fraction_validated(self):
        with pytest.raises(ValueError):
            hotspot(8, 10, fraction=1.5)

    def test_all_to_all_count(self):
        m = all_to_all(8)
        assert len(m) == 8 * 7
        assert len(set(m.as_pairs())) == 56

    def test_bisection_stress_crosses_root(self):
        n = 32
        m = bisection_stress(n, seed=1)
        assert np.all((m.src < 16) != (m.dst < 16))

    def test_bisection_stress_saturates_root_channels(self):
        n = 32
        ft = FatTree(n)
        m = bisection_stress(n, m_per_proc=4, seed=2)
        loads = channel_loads(ft, m)
        assert loads.up[1].min() > 0  # both root channels loaded


class TestLocality:
    def test_decay_controls_root_traffic(self):
        """Lower decay = more local traffic = lighter root load."""
        n = 256
        ft = FatTree(n)
        local = local_traffic(n, 4000, decay=0.25, seed=0)
        globl = local_traffic(n, 4000, decay=2.0, seed=0)
        root_local = channel_loads(ft, local).up[1].sum()
        root_global = channel_loads(ft, globl).up[1].sum()
        assert root_local < root_global / 3

    def test_endpoints_in_range(self):
        m = local_traffic(64, 1000, decay=0.5, seed=1)
        assert m.dst.min() >= 0 and m.dst.max() < 64

    def test_no_self_messages(self):
        m = local_traffic(64, 500, seed=2)
        assert np.all(m.src != m.dst)  # the LCA-level flip guarantees it

    def test_decay_validated(self):
        with pytest.raises(ValueError):
            local_traffic(16, 10, decay=0.0)


class TestPlanarFEM:
    def test_grid_edge_count(self):
        # side k grid: 2·k·(k-1) edges
        assert len(grid_fem_edges(16)) == 2 * 4 * 3

    def test_grid_needs_square(self):
        with pytest.raises(ValueError):
            grid_fem_edges(8)

    def test_triangulation_is_planar_sized(self):
        n = 128
        edges = triangulated_fem_edges(n, seed=0)
        assert len(edges) <= 3 * n - 6  # Euler bound for planar graphs

    def test_fem_message_set_is_symmetric(self):
        m = fem_message_set(grid_fem_edges(16), 16)
        pairs = set(m.as_pairs())
        assert all((d, s) in pairs for s, d in pairs)

    def test_hilbert_placement_beats_random(self):
        """The §I point: with a good partitioner, planar traffic loads
        the fat-tree root far below a scrambled placement."""
        n = 256
        ft = FatTree(n)
        edges = grid_fem_edges(n)
        good = fem_message_set(edges, n, placement="hilbert")
        bad = fem_message_set(edges, n, placement="random", seed=3)
        assert load_factor(ft, good) <= load_factor(ft, bad)
        root_good = channel_loads(ft, good).up[1].max()
        root_bad = channel_loads(ft, bad).up[1].max()
        assert root_good < root_bad

    def test_hilbert_root_load_is_o_sqrt_n(self):
        """Planar + locality-preserving placement ⇒ O(√n) crosses the
        bisection (Lipton-Tarjan)."""
        for n in (64, 256, 1024):
            ft = FatTree(n)
            m = fem_message_set(grid_fem_edges(n), n, placement="hilbert")
            root_load = int(channel_loads(ft, m).up[1].max())
            assert root_load <= planar_bisection_bound(n)

    def test_unknown_placement(self):
        with pytest.raises(ValueError):
            fem_message_set(grid_fem_edges(16), 16, placement="bogus")


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 10_000))
def test_generators_produce_valid_message_sets(log_n, seed):
    n = 1 << log_n
    gens = [
        random_permutation(n, seed),
        bit_reversal(n),
        cyclic_shift(n, seed % n),
        tornado(n),
        uniform_random(n, 50, seed),
        hotspot(n, 50, target=seed % n, seed=seed),
        local_traffic(n, 50, decay=0.5, seed=seed),
    ]
    for m in gens:
        assert isinstance(m, MessageSet)
        assert m.n == n
