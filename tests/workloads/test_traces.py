"""Tests for multi-round application traces."""

import numpy as np
import pytest

from repro.core import FatTree, UniversalCapacity, load_factor
from repro.workloads import (
    Trace,
    allreduce_trace,
    bitonic_sort_trace,
    fft_trace,
    schedule_trace,
    sparse_matvec_trace,
    stencil_trace,
)

ALL_TRACES = [
    fft_trace(64),
    bitonic_sort_trace(64),
    stencil_trace(64, iterations=3),
    sparse_matvec_trace(64, seed=1),
    allreduce_trace(64),
]


@pytest.mark.parametrize("trace", ALL_TRACES, ids=lambda t: t.name)
class TestTraceContract:
    def test_nonempty_rounds(self, trace):
        assert len(trace) >= 1
        assert all(len(r) > 0 for r in trace.rounds)

    def test_consistent_n(self, trace):
        assert all(r.n == trace.n for r in trace.rounds)

    def test_schedulable(self, trace):
        ft = FatTree(trace.n, UniversalCapacity(trace.n, 16))
        schedules, total = schedule_trace(ft, trace)
        assert len(schedules) == len(trace)
        assert total == sum(s.num_cycles for s in schedules)
        for r, s in zip(trace.rounds, schedules):
            s.validate(ft, r)


class TestFFT:
    def test_round_count(self):
        assert len(fft_trace(256)) == 8

    def test_each_round_is_permutation(self):
        for r in fft_trace(64).rounds:
            assert sorted(r.dst.tolist()) == list(range(64))

    def test_round_k_flips_bit_k(self):
        tr = fft_trace(16)
        for k, r in enumerate(tr.rounds):
            for s, d in r:
                assert s ^ d == 1 << k

    def test_whole_fft_is_one_cycle_per_round_on_full_tree(self):
        ft = FatTree(64)
        for r in fft_trace(64).rounds:
            assert load_factor(ft, r) <= 1.0


class TestBitonic:
    def test_round_count_is_lg_squared(self):
        # lg n (lg n + 1) / 2 rounds
        assert len(bitonic_sort_trace(64)) == 6 * 7 // 2

    def test_message_volume(self):
        tr = bitonic_sort_trace(16)
        assert tr.total_messages() == len(tr) * 16


class TestStencil:
    def test_identical_rounds(self):
        tr = stencil_trace(64, iterations=5)
        assert len(tr) == 5
        assert all(r == tr.rounds[0] for r in tr.rounds)

    def test_local_structure(self):
        """Stencil partners are grid neighbours: λ is set by the stencil
        degree at the unit leaf channels, and the root load stays within
        the planar O(√n) bound."""
        from repro.core import channel_loads
        from repro.workloads import planar_bisection_bound

        ft = FatTree(256)
        r = stencil_trace(256).rounds[0]
        assert load_factor(ft, r) <= 4.0  # 4-point stencil degree
        root_load = int(channel_loads(ft, r).up[1].max())
        assert root_load <= planar_bisection_bound(256)


class TestSparseMatvec:
    def test_no_self_messages(self):
        tr = sparse_matvec_trace(32, seed=0)
        r = tr.rounds[0]
        assert np.all(r.src != r.dst)

    def test_row_demand_bounded(self):
        tr = sparse_matvec_trace(32, nnz_per_row=4, seed=0)
        r = tr.rounds[0]
        counts = np.bincount(r.dst, minlength=32)
        assert counts.max() <= 4

    def test_seeded(self):
        a = sparse_matvec_trace(32, seed=5).rounds[0]
        b = sparse_matvec_trace(32, seed=5).rounds[0]
        assert a == b


class TestAllreduce:
    def test_matches_fft_shape(self):
        a = allreduce_trace(64)
        f = fft_trace(64)
        assert len(a) == len(f)
        for ra, rf in zip(a.rounds, f.rounds):
            assert ra == rf


class TestTraceAggregate:
    def test_total_messages(self):
        tr = Trace("x", [stencil_trace(64).rounds[0]] * 2)
        assert tr.total_messages() == 2 * len(stencil_trace(64).rounds[0])

    def test_empty_trace(self):
        tr = Trace("empty", [])
        assert tr.n == 0 and len(tr) == 0
