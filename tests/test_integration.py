"""Cross-package integration tests.

Each test threads one scenario through several subsystems and checks the
pieces agree with each other — the repo-level invariants no single
package test can see.
"""

import math

import numpy as np
import pytest

from repro.analysis import schedule_stats, traffic_stats
from repro.core import (
    FatTree,
    UniversalCapacity,
    exact_minimum_cycles,
    load_factor,
    schedule_corollary2,
    schedule_greedy_first_fit,
    schedule_random_rank,
    schedule_theorem1,
    simulate_online_retry,
    ScaledCapacity,
)
from repro.hardware import run_schedule, run_store_and_forward, run_until_delivered
from repro.networks import Hypercube, Mesh2D
from repro.universality import embed_network, simulate_network_on_fattree
from repro.vlsi import (
    balance_decomposition,
    build_fattree_layout,
    cutting_plane_tree,
    universal_fattree_for_volume,
)
from repro.workloads import fem_message_set, grid_fem_edges, uniform_random


class TestSchedulerAgreement:
    """All five schedulers on the same instance: consistent partitions,
    consistent ordering of quality."""

    def test_all_schedulers_valid_and_ordered(self):
        n = 64
        base = UniversalCapacity(n, n)
        ft = FatTree(n, ScaledCapacity(base, lambda c: 2 * c * base.depth))
        m = uniform_random(n, 10 * n, seed=0)
        lam = math.ceil(load_factor(ft, m))

        results = {}
        for name, fn in (
            ("thm1", schedule_theorem1),
            ("cor2", schedule_corollary2),
            ("greedy", schedule_greedy_first_fit),
            ("rank", lambda f, mm: schedule_random_rank(f, mm, seed=1)),
            ("retry", lambda f, mm: simulate_online_retry(f, mm, seed=1)),
        ):
            sched = fn(ft, m)
            sched.validate(ft, m)
            results[name] = sched.num_cycles
        assert all(d >= lam for d in results.values())
        assert results["cor2"] <= results["thm1"]

    def test_exact_beats_everyone_on_small_instance(self):
        ft = FatTree(16, UniversalCapacity(16, 8, strict=False))
        m = uniform_random(16, 22, seed=3)
        opt = exact_minimum_cycles(ft, m)
        for sched in (
            schedule_theorem1(ft, m),
            schedule_greedy_first_fit(ft, m),
            schedule_random_rank(ft, m, seed=0),
        ):
            assert sched.num_cycles >= opt


class TestScheduleMeetsHardware:
    """Schedules, the switch simulator, and the buffered design must
    agree on what gets delivered."""

    def test_offline_schedule_runs_clean_on_switches(self):
        n = 128
        ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
        m = uniform_random(n, 6 * n, seed=4)
        sched = schedule_theorem1(ft, m)
        reports = run_schedule(ft, sched)
        delivered = sum(len(r.delivered) for r in reports)
        assert delivered == len(m.without_self_messages())

    def test_three_delivery_mechanisms_agree_on_message_count(self):
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16))
        m = uniform_random(n, 3 * n, seed=5).without_self_messages()
        sched_total = sum(
            len(c) for c in schedule_theorem1(ft, m).cycles
        )
        retry_total = sum(
            len(r.delivered)
            for r in run_until_delivered(ft, m, seed=0).reports
        )
        buffered = run_store_and_forward(ft, m)
        assert sched_total == retry_total == len(m)
        assert buffered.latencies.size == len(m)

    def test_schedule_stats_consistent_with_simulator(self):
        """A schedule whose stats say peak utilisation <= 1 must route
        with zero drops — and does."""
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16))
        m = uniform_random(n, 4 * n, seed=6)
        sched = schedule_theorem1(ft, m)
        stats = schedule_stats(ft, sched)
        assert stats.mean_peak_utilisation <= 1.0
        run_schedule(ft, sched)  # raises on any loss


class TestGeometryMeetsScheduling:
    """The VLSI pipeline and the scheduler compose."""

    def test_constructed_layout_through_theorem10(self):
        """Build a fat-tree's own 3-D layout, cut it, balance it, embed
        its traffic into another fat-tree of that volume: the whole loop
        stays within the Theorem 10 bound."""
        lay = build_fattree_layout(64, 16)
        lay.validate_disjoint()
        tree = cutting_plane_tree(lay.processor_layout())
        bal = balance_decomposition(tree)
        bal.validate_balance()
        ft = universal_fattree_for_volume(64, lay.volume)
        assert ft.root_capacity >= math.ceil(64 ** (2 / 3))

    def test_embedding_preserves_load_semantics(self):
        """λ of translated traffic equals λ computed after manual
        relabeling by the same leaf map."""
        net = Mesh2D(64)
        ft = universal_fattree_for_volume(64, net.layout().volume)
        emb = embed_network(net, ft)
        m = uniform_random(64, 200, seed=7)
        translated = emb.translate(m)
        manual = np.array(emb.leaf_of)
        assert np.array_equal(translated.src, manual[m.src])
        assert load_factor(ft, translated) >= 0

    def test_fem_to_hardware_end_to_end(self):
        """§I story end to end: planar FEM traffic → skinny fat-tree →
        schedule → bit-serial switches, zero drops."""
        n = 256
        m = fem_message_set(grid_fem_edges(n), n, placement="hilbert")
        ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
        sched = schedule_theorem1(ft, m)
        sched.validate(ft, m)
        run_schedule(ft, sched)
        ts = traffic_stats(ft, m)
        assert ts.locality > 0.4  # Hilbert placement keeps it local


class TestUniversalityCoherence:
    def test_simulation_result_pieces_multiply(self):
        net = Hypercube(64)
        res = simulate_network_on_fattree(net, net.neighbor_message_set(), t=1)
        assert res.fat_tree_time == res.delivery_cycles * res.switch_ticks
        assert res.slowdown == pytest.approx(res.fat_tree_time / res.t)

    def test_more_volume_never_slows_the_simulation(self):
        net = Mesh2D(64)
        m = net.neighbor_message_set()
        small = simulate_network_on_fattree(net, m, t=1)
        big = simulate_network_on_fattree(
            net, m, t=1, volume=4 * net.layout().volume
        )
        assert big.delivery_cycles <= small.delivery_cycles
