"""Shared fixtures for the conformance-fuzzer tests: deliberately broken
("mutant") schedulers that the oracle must catch."""

import pytest

from repro.core.fattree import FatTree
from repro.core.scheduler import schedule_theorem1
from repro.verify import DifferentialOracle


class InflatedCapacityTree(FatTree):
    """Off-by-one capacity mutant: every channel claims one extra wire.

    Scheduling against the inflated tree packs ``cap(c) + 1`` messages
    onto a real ``cap(c)`` channel, so the produced schedule violates
    the one-cycle invariant whenever a channel is saturated.
    """

    def __init__(self, base: FatTree):
        super().__init__(base.n, base.capacity)
        self._base = base

    def chan_cap(self, level, index, direction):
        return self._base.chan_cap(level, index, direction) + 1

    def cap_vector(self, level, direction):
        return self._base.cap_vector(level, direction) + 1


def mutant_theorem1(ft, messages, *, seed, max_cycles, obs=None):
    """Theorem 1 run against the off-by-one inflated capacities."""
    return schedule_theorem1(InflatedCapacityTree(ft), messages, obs=obs)


@pytest.fixture
def clean_oracle():
    """An unmutated oracle (every stack as shipped)."""
    return DifferentialOracle()


@pytest.fixture
def mutant_oracle():
    """An oracle whose Theorem 1 stack oversubscribes every channel by
    one wire — the canonical injected bug the harness must catch."""
    return DifferentialOracle(overrides={"theorem1": mutant_theorem1})
