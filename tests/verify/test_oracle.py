"""Differential-oracle behaviour: clean passes, skip logic, and the
failure report a caught mutant produces."""

import pytest

from repro.verify import (
    ConformanceError,
    DifferentialOracle,
    FuzzCase,
    SCHEDULE_STACKS,
    generate_case,
)
from repro.verify.corpus import DEFAULT_CORPUS_PATH, load_corpus


def test_clean_oracle_passes_generated_stream(clean_oracle):
    for i in range(15):
        case = generate_case(0, i, max_n=16)
        report = clean_oracle.check(case)
        assert report.checks > 0
        assert "theorem1" in report.cycles
        assert report.cycles["buffered"] >= 0
        assert report.cycles["switchsim"] >= 0


def test_clean_oracle_passes_seed_corpus(clean_oracle):
    cases = load_corpus(DEFAULT_CORPUS_PATH)
    assert len(cases) >= 6
    for case in cases:
        assert clean_oracle.passes(case)


def test_report_counts_unroutable_on_degraded_tree(clean_oracle):
    case = FuzzCase(
        label="dead-quadrant",
        n=8,
        w=8,
        src=(0, 1, 4, 5),
        dst=(4, 5, 0, 1),
        dead_switches=((1, 1),),  # severs the right half from the root
    )
    report = clean_oracle.check(case)
    assert report.num_unroutable > 0
    assert report.num_routable + report.num_unroutable == report.num_messages


def test_corollary2_skipped_on_universal_profile(clean_oracle):
    case = FuzzCase(label="u", n=8, w=8, src=(0, 1, 2), dst=(7, 6, 5))
    report = clean_oracle.check(case)
    assert "corollary2" in report.skipped
    assert "corollary2" not in report.cycles


def test_corollary2_runs_on_wide_profile(clean_oracle):
    case = FuzzCase(
        label="wide", n=8, w=5, src=(0, 1, 2), dst=(7, 6, 5), profile="constant"
    )
    report = clean_oracle.check(case)
    assert report.skipped == ()
    assert "corollary2" in report.cycles


def test_schedule_stacks_all_covered_somewhere(clean_oracle):
    covered = set()
    for i in range(40):
        report = clean_oracle.check(generate_case(0, i, max_n=16))
        covered |= set(report.cycles)
    assert set(SCHEDULE_STACKS) <= covered


def test_unknown_override_rejected():
    with pytest.raises(ValueError, match="unknown stack override"):
        DifferentialOracle(overrides={"not-a-stack": lambda *a, **k: None})


def test_mutant_failure_report(mutant_oracle, clean_oracle):
    case = FuzzCase(
        label="saturating",
        n=8,
        w=2,
        src=(0, 1, 2, 3) * 3,
        dst=(4, 5, 6, 7) * 3,
    )
    assert clean_oracle.passes(case)
    with pytest.raises(ConformanceError) as excinfo:
        mutant_oracle.check(case)
    err = excinfo.value
    assert err.case == case
    assert err.failures
    assert any("theorem1" in f for f in err.failures)
    # the exception message embeds the paste-able JSON reproducer
    assert case.to_json() in str(err)
    assert not mutant_oracle.passes(case)


def test_hardware_and_obs_stages_optional():
    oracle = DifferentialOracle(run_hardware=False, check_obs=False)
    report = oracle.check(generate_case(0, 0, max_n=16))
    assert "buffered" not in report.cycles
    assert "switchsim" not in report.cycles


def test_cycle_counts_respect_lambda_floor(clean_oracle):
    import math

    for i in range(10):
        report = clean_oracle.check(generate_case(7, i, max_n=16))
        floor = math.ceil(report.lam) if report.num_routable else 0
        for name, cycles in report.cycles.items():
            assert cycles >= floor, f"{name} beat the λ lower bound"


def test_chaos_checks_cover_timeline_cases(clean_oracle):
    case = FuzzCase(
        label="chaotic",
        n=8,
        w=8,
        src=(0, 1, 2, 5),
        dst=(7, 6, 5, 2),
        chaos_events=(
            {"at": 1, "kind": "wire-drop", "level": 1, "index": 0, "count": 2},
            {"at": 3, "kind": "wire-repair", "level": 1, "index": 0, "count": 2},
        ),
    )
    report = clean_oracle.check(case)
    assert "chaos-random-rank" in report.cycles
    assert "chaos-theorem1" in report.cycles


def test_chaos_checks_catch_a_broken_chaos_runner(clean_oracle, monkeypatch):
    """The empty-timeline identity check runs on every case: a chaos
    runner that silently loses a delivery cycle must fail conformance."""
    import repro.chaos as chaos_mod

    real = chaos_mod.run_chaos_random_rank

    def lossy(ft, messages, timeline, **kwargs):
        import dataclasses as dc

        sched = real(ft, messages, timeline, **kwargs)
        if sched.cycles:
            return dc.replace(
                sched,
                cycles=sched.cycles[:-1],
                cycle_stats=sched.cycle_stats[:-1],
            )
        return sched

    monkeypatch.setattr(chaos_mod, "run_chaos_random_rank", lossy)
    case = FuzzCase(label="u", n=8, w=8, src=(0, 1, 2), dst=(7, 6, 5))
    with pytest.raises(ConformanceError) as excinfo:
        clean_oracle.check(case)
    assert any("chaos" in f for f in excinfo.value.failures)
    assert not clean_oracle.passes(case)


def test_chaos_checks_can_be_disabled():
    oracle = DifferentialOracle(check_chaos=False)
    case = FuzzCase(
        label="chaotic",
        n=8,
        w=8,
        src=(0, 1),
        dst=(7, 6),
        chaos_events=({"at": 0, "kind": "switch-kill", "level": 1, "index": 0},),
    )
    report = oracle.check(case)
    assert "chaos-random-rank" not in report.cycles
