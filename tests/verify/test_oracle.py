"""Differential-oracle behaviour: clean passes, skip logic, and the
failure report a caught mutant produces."""

import pytest

from repro.verify import (
    ConformanceError,
    DifferentialOracle,
    FuzzCase,
    SCHEDULE_STACKS,
    generate_case,
)
from repro.verify.corpus import DEFAULT_CORPUS_PATH, load_corpus


def test_clean_oracle_passes_generated_stream(clean_oracle):
    for i in range(15):
        case = generate_case(0, i, max_n=16)
        report = clean_oracle.check(case)
        assert report.checks > 0
        assert "theorem1" in report.cycles
        assert report.cycles["buffered"] >= 0
        assert report.cycles["switchsim"] >= 0


def test_clean_oracle_passes_seed_corpus(clean_oracle):
    cases = load_corpus(DEFAULT_CORPUS_PATH)
    assert len(cases) >= 6
    for case in cases:
        assert clean_oracle.passes(case)


def test_report_counts_unroutable_on_degraded_tree(clean_oracle):
    case = FuzzCase(
        label="dead-quadrant",
        n=8,
        w=8,
        src=(0, 1, 4, 5),
        dst=(4, 5, 0, 1),
        dead_switches=((1, 1),),  # severs the right half from the root
    )
    report = clean_oracle.check(case)
    assert report.num_unroutable > 0
    assert report.num_routable + report.num_unroutable == report.num_messages


def test_corollary2_skipped_on_universal_profile(clean_oracle):
    case = FuzzCase(label="u", n=8, w=8, src=(0, 1, 2), dst=(7, 6, 5))
    report = clean_oracle.check(case)
    assert "corollary2" in report.skipped
    assert "corollary2" not in report.cycles


def test_corollary2_runs_on_wide_profile(clean_oracle):
    case = FuzzCase(
        label="wide", n=8, w=5, src=(0, 1, 2), dst=(7, 6, 5), profile="constant"
    )
    report = clean_oracle.check(case)
    assert report.skipped == ()
    assert "corollary2" in report.cycles


def test_schedule_stacks_all_covered_somewhere(clean_oracle):
    covered = set()
    for i in range(40):
        report = clean_oracle.check(generate_case(0, i, max_n=16))
        covered |= set(report.cycles)
    assert set(SCHEDULE_STACKS) <= covered


def test_unknown_override_rejected():
    with pytest.raises(ValueError, match="unknown stack override"):
        DifferentialOracle(overrides={"not-a-stack": lambda *a, **k: None})


def test_mutant_failure_report(mutant_oracle, clean_oracle):
    case = FuzzCase(
        label="saturating",
        n=8,
        w=2,
        src=(0, 1, 2, 3) * 3,
        dst=(4, 5, 6, 7) * 3,
    )
    assert clean_oracle.passes(case)
    with pytest.raises(ConformanceError) as excinfo:
        mutant_oracle.check(case)
    err = excinfo.value
    assert err.case == case
    assert err.failures
    assert any("theorem1" in f for f in err.failures)
    # the exception message embeds the paste-able JSON reproducer
    assert case.to_json() in str(err)
    assert not mutant_oracle.passes(case)


def test_hardware_and_obs_stages_optional():
    oracle = DifferentialOracle(run_hardware=False, check_obs=False)
    report = oracle.check(generate_case(0, 0, max_n=16))
    assert "buffered" not in report.cycles
    assert "switchsim" not in report.cycles


def test_cycle_counts_respect_lambda_floor(clean_oracle):
    import math

    for i in range(10):
        report = clean_oracle.check(generate_case(7, i, max_n=16))
        floor = math.ceil(report.lam) if report.num_routable else 0
        for name, cycles in report.cycles.items():
            assert cycles >= floor, f"{name} beat the λ lower bound"
