"""Delta-debugging shrinker: minimality, and the ISSUE acceptance test —
an injected off-by-one capacity mutant is caught and shrunk to a
reproducer of at most 8 messages."""

import dataclasses

import pytest

from repro.verify import FuzzCase, generate_case, shrink_case


def _saturating_case() -> FuzzCase:
    """A case the off-by-one mutant provably mis-schedules: w = 2 at the
    root, 12 crossings, so packing 3-per-cycle onto a 2-wire channel
    violates the one-cycle invariant immediately."""
    return FuzzCase(
        label="saturating",
        n=8,
        w=2,
        src=(0, 1, 2, 3) * 3,
        dst=(4, 5, 6, 7) * 3,
    )


def test_mutant_caught_and_shrunk_to_at_most_8_messages(
    mutant_oracle, clean_oracle
):
    """ISSUE 4 acceptance criterion: the oracle catches the test-only
    off-by-one capacity mutant, and the shrinker reduces the failing
    case to a reproducer of <= 8 messages."""
    case = _saturating_case()
    assert not mutant_oracle.passes(case), "oracle failed to catch the mutant"

    small = shrink_case(case, lambda c: not mutant_oracle.passes(c))
    assert len(small.src) <= 8, small.describe()
    assert not mutant_oracle.passes(small), "shrunk case no longer fails"
    assert clean_oracle.passes(small), "shrunk case blames the real stacks"
    assert small.label.endswith(":shrunk")


def test_mutant_caught_in_generated_stream_and_shrunk(mutant_oracle):
    """The fuzz stream itself surfaces the mutant; the first failure
    shrinks below the acceptance ceiling too."""
    failing = None
    for i in range(50):
        case = generate_case(0, i, max_n=16)
        if not mutant_oracle.passes(case):
            failing = case
            break
    assert failing is not None, "mutant survived 50 generated cases"
    small = shrink_case(failing, lambda c: not mutant_oracle.passes(c))
    assert len(small.src) <= 8
    assert not mutant_oracle.passes(small)


def test_shrink_rejects_passing_case(clean_oracle):
    case = _saturating_case()
    with pytest.raises(ValueError, match="failing case"):
        shrink_case(case, lambda c: not clean_oracle.passes(c))


def test_shrink_clears_irrelevant_faults():
    # predicate only cares about message count, so faults must be dropped
    case = FuzzCase(
        label="f",
        n=8,
        w=4,
        src=tuple(range(8)),
        dst=tuple(reversed(range(8))),
        wire_fault_fraction=0.25,
    )
    small = shrink_case(case, lambda c: len(c.src) >= 1)
    assert not small.has_faults
    assert len(small.src) == 1


def test_shrink_halves_n_when_possible():
    # fails whenever any message exists entirely inside the left half
    def fails(c: FuzzCase) -> bool:
        return any(s < 4 and d < 4 for s, d in zip(c.src, c.dst))

    case = FuzzCase(
        label="local",
        n=32,
        w=8,
        src=(0, 17, 20, 30),
        dst=(3, 19, 21, 31),
    )
    assert fails(case)
    small = shrink_case(case, fails)
    assert small.n < 32
    assert len(small.src) == 1
    assert fails(small)


def test_shrink_clears_irrelevant_chaos_events():
    case = FuzzCase(
        label="c",
        n=8,
        w=4,
        src=tuple(range(8)),
        dst=tuple(reversed(range(8))),
        chaos_events=(
            {"at": 1, "kind": "switch-kill", "level": 1, "index": 0},
            {"at": 3, "kind": "loss-rate", "rate": 0.2},
        ),
    )
    assert case.has_chaos
    small = shrink_case(case, lambda c: len(c.src) >= 1)
    assert not small.has_chaos
    assert len(small.src) == 1


def test_halving_n_keeps_only_addressable_chaos_events():
    # the level-5 wire event only exists on the n=32 tree; halving must
    # filter it rather than produce an unreplayable case
    def fails(c: FuzzCase) -> bool:
        return any(s < 4 and d < 4 for s, d in zip(c.src, c.dst))

    case = FuzzCase(
        label="local",
        n=32,
        w=8,
        src=(0, 17), dst=(3, 19),
        chaos_events=(
            {"at": 0, "kind": "wire-drop", "level": 5, "index": 31},
            {"at": 1, "kind": "loss-rate", "rate": 0.1},
        ),
    )
    small = shrink_case(case, fails)
    assert small.n < 32
    depth = small.n.bit_length() - 1
    for ev in small.chaos_events:
        assert ev.kind == "loss-rate" or ev.level <= depth


class TestShrinkBudget:
    def _counting(self, fails):
        calls = {"n": 0}

        def wrapped(c):
            calls["n"] += 1
            return fails(c)

        return wrapped, calls

    def test_zero_checks_returns_the_starting_case(self):
        case = _saturating_case()
        small = shrink_case(case, lambda c: len(c.src) >= 1, max_checks=0)
        assert small.src == case.src  # no probe budget: nothing shrinks
        assert small.label.endswith(":shrunk")

    def test_confirmation_probe_is_not_budgeted(self):
        fails, calls = self._counting(lambda c: len(c.src) >= 1)
        shrink_case(_saturating_case(), fails, max_checks=5)
        assert calls["n"] <= 1 + 5  # one unbudgeted confirm + the budget

    def test_exhausted_budget_returns_smallest_failing_probe(self):
        case = _saturating_case()
        small = shrink_case(case, lambda c: len(c.src) >= 1, max_checks=3)
        assert len(small.src) <= len(case.src)
        assert len(small.src) >= 1  # still failing, never a passing case

    def test_zero_seconds_budget_is_immediate(self):
        case = _saturating_case()
        small = shrink_case(case, lambda c: len(c.src) >= 1, max_seconds=0.0)
        assert small.src == case.src

    def test_negative_budgets_rejected(self):
        case = _saturating_case()
        with pytest.raises(ValueError, match="max_checks"):
            shrink_case(case, lambda c: True, max_checks=-1)
        with pytest.raises(ValueError, match="max_seconds"):
            shrink_case(case, lambda c: True, max_seconds=-0.5)

    def test_generous_budget_still_fully_minimises(self, mutant_oracle):
        case = _saturating_case()
        predicate = lambda c: not mutant_oracle.passes(c)  # noqa: E731
        unbudgeted = shrink_case(case, predicate)
        budgeted = shrink_case(case, predicate, max_checks=10_000,
                               max_seconds=300.0)
        assert len(budgeted.src) == len(unbudgeted.src)


def test_shrink_is_idempotent(mutant_oracle):
    case = _saturating_case()
    predicate = lambda c: not mutant_oracle.passes(c)  # noqa: E731
    once = shrink_case(case, predicate)
    twice = shrink_case(once, predicate)
    assert len(twice.src) == len(once.src)
    assert dataclasses.replace(twice, label=once.label) == once
