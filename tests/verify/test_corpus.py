"""JSONL corpus round-trips, parse errors, and replay of the real
checked-in regression corpus."""

import pytest

from repro.verify import (
    ConformanceError,
    FuzzCase,
    generate_case,
)
from repro.verify.corpus import (
    DEFAULT_CORPUS_PATH,
    append_case,
    load_corpus,
    replay_corpus,
    write_corpus,
)


def _cases(k=4):
    return [generate_case(11, i, max_n=16) for i in range(k)]


def test_write_load_round_trip(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    cases = _cases()
    assert write_corpus(cases, path) == len(cases)
    assert load_corpus(path) == cases


def test_append_extends_in_order(tmp_path):
    path = str(tmp_path / "sub" / "corpus.jsonl")  # directory is created
    first, second = _cases(2)
    append_case(first, path)
    append_case(second, path)
    assert load_corpus(path) == [first, second]


def test_comments_and_blank_lines_skipped(tmp_path):
    path = str(tmp_path / "corpus.jsonl")
    case = _cases(1)[0]
    path_obj = tmp_path / "corpus.jsonl"
    path_obj.write_text(
        "# seed corpus\n\n" + case.to_json() + "\n\n# trailing comment\n"
    )
    assert load_corpus(path) == [case]


def test_malformed_line_names_line_number(tmp_path):
    path_obj = tmp_path / "corpus.jsonl"
    path_obj.write_text(_cases(1)[0].to_json() + "\nnot json at all\n")
    with pytest.raises(ValueError, match=r":2: malformed corpus line"):
        load_corpus(str(path_obj))


def test_replay_checked_in_corpus_covers_every_family():
    reports = replay_corpus(DEFAULT_CORPUS_PATH)
    assert len(reports) >= 6
    labels = {r.case.label.split(":")[0] for r in reports}
    assert {"k-relation", "hotspot", "skewed", "lambda", "faulted", "wide"} <= labels


def test_replay_raises_on_failing_case(tmp_path, mutant_oracle):
    path = str(tmp_path / "corpus.jsonl")
    write_corpus(
        [
            FuzzCase(
                label="saturating",
                n=8,
                w=2,
                src=(0, 1, 2, 3) * 3,
                dst=(4, 5, 6, 7) * 3,
            )
        ],
        path,
    )
    with pytest.raises(ConformanceError):
        replay_corpus(path, mutant_oracle)
