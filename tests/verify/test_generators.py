"""Generator determinism, serialisation and adversarial coverage."""

import dataclasses
import math

import pytest

from repro.core.load import load_factor
from repro.core.reuse_scheduler import capacity_ratio
from repro.verify import (
    GENERATOR_NAMES,
    FuzzCase,
    case_from_messages,
    generate_case,
)
from repro.workloads import bit_reversal


class TestFuzzCase:
    def test_json_round_trip(self):
        case = FuzzCase(
            label="hand",
            n=8,
            w=4,
            src=(0, 1, 2),
            dst=(7, 6, 5),
            wire_fault_fraction=0.25,
            dead_switches=((2, 1),),
            seed=42,
        )
        assert FuzzCase.from_json(case.to_json()) == case

    def test_round_trip_preserves_profile(self):
        case = FuzzCase(
            label="wide", n=8, w=5, src=(0,), dst=(7,), profile="constant"
        )
        restored = FuzzCase.from_json(case.to_json())
        assert restored.profile == "constant"
        assert restored.base_tree().cap(3) == 5

    def test_missing_optional_fields_default(self):
        case = FuzzCase.from_json(
            '{"label":"x","n":4,"w":2,"src":[0],"dst":[3]}'
        )
        assert not case.has_faults
        assert case.seed == 0
        assert case.profile == "universal"

    def test_mismatched_endpoints_rejected(self):
        with pytest.raises(ValueError, match="lengths differ"):
            FuzzCase(label="bad", n=4, w=2, src=(0, 1), dst=(2,))

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            FuzzCase(label="bad", n=4, w=2, src=(0,), dst=(1,), profile="nope")

    def test_tree_degrades_only_with_faults(self):
        from repro.faults import DegradedFatTree

        healthy = FuzzCase(label="h", n=8, w=4, src=(0,), dst=(7,))
        assert not isinstance(healthy.tree(), DegradedFatTree)
        hurt = dataclasses.replace(healthy, dead_switches=((2, 0),))
        assert isinstance(hurt.tree(), DegradedFatTree)

    def test_case_from_messages(self):
        ms = bit_reversal(16)
        case = case_from_messages("bit-reversal", ms, 8, seed=3)
        assert case.n == 16 and case.w == 8 and case.seed == 3
        assert case.message_set() == ms

    def test_repro_snippet_embeds_json(self):
        case = FuzzCase(label="x", n=4, w=2, src=(0,), dst=(3,))
        snippet = case.repro_snippet()
        assert case.to_json() in snippet
        assert "DifferentialOracle" in snippet


class TestGenerateCase:
    def test_pure_function_of_seed_and_index(self):
        for i in range(10):
            assert generate_case(5, i) == generate_case(5, i)

    def test_distinct_indices_distinct_cases(self):
        cases = {generate_case(0, i).to_json() for i in range(30)}
        assert len(cases) >= 25  # collisions are astronomically unlikely

    def test_every_family_appears(self):
        seen = {generate_case(0, i).label.split(":")[0] for i in range(300)}
        # the transpose family emits either label; fold them together
        if "bit-reversal" in seen:
            seen.add("transpose")
        assert set(GENERATOR_NAMES) <= seen

    def test_cases_materialise(self):
        for i in range(40):
            case = generate_case(1, i)
            ft = case.tree()
            ms = case.message_set()
            assert ms.n == ft.n == case.n
            assert 4 <= case.n <= 32

    def test_max_n_respected(self):
        assert all(generate_case(0, i, max_n=8).n <= 8 for i in range(30))
        with pytest.raises(ValueError, match="max_n"):
            generate_case(0, 0, max_n=2)

    def test_lambda_targeted_hits_load(self):
        hit = 0
        for i in range(200):
            case = generate_case(2, i)
            if case.label != "lambda":
                continue
            lam = load_factor(case.tree(), case.message_set())
            assert math.isfinite(lam)
            if lam >= 1.0:
                hit += 1
        assert hit > 0  # the λ-targeted family really loads the cut

    def test_wide_cases_admit_corollary2(self):
        wide = [
            generate_case(3, i)
            for i in range(200)
            if generate_case(3, i).label.startswith("wide:")
        ]
        assert wide, "no wide cases in 200 draws"
        for case in wide:
            assert capacity_ratio(case.tree()) > 1.0


class TestChaosCases:
    def test_chaos_events_round_trip(self):
        case = FuzzCase(
            label="chaotic",
            n=8,
            w=4,
            src=(0, 1),
            dst=(7, 6),
            chaos_events=(
                {"at": 1, "kind": "switch-kill", "level": 1, "index": 0},
                {"at": 4, "kind": "loss-rate", "rate": 0.2},
            ),
        )
        assert case.has_chaos
        row = case.to_dict()
        assert "chaos" in row
        assert FuzzCase.from_dict(row) == case
        assert FuzzCase.from_json(case.to_json()) == case
        assert "chaos=2ev" in case.describe()

    def test_chaos_free_rows_stay_byte_identical(self):
        # corpus back-compat: no "chaos" key unless events exist, so
        # pre-chaos corpus lines round-trip without diffs
        case = FuzzCase(label="plain", n=8, w=4, src=(0,), dst=(7,))
        assert not case.has_chaos
        assert "chaos" not in case.to_dict()
        assert case.chaos_timeline().empty

    def test_chaos_family_generates_replayable_timelines(self):
        from repro.chaos import EVENT_KINDS

        chaotic = []
        for i in range(120):
            case = generate_case(5, i, max_n=16)
            if case.label.startswith("chaos:"):
                chaotic.append(case)
        assert chaotic, "no chaos cases in 120 draws"
        assert any(c.has_chaos for c in chaotic)
        for case in chaotic:
            timeline = case.chaos_timeline()
            depth = case.base_tree().depth
            for ev in timeline.events:
                assert ev.kind in EVENT_KINDS
                if ev.kind.startswith("wire"):
                    assert 1 <= ev.level <= depth
                elif ev.kind.startswith("switch"):
                    assert 0 <= ev.level < depth

    def test_chaos_family_is_deterministic(self):
        for i in range(20):
            assert generate_case(9, i).to_json() == generate_case(9, i).to_json()
