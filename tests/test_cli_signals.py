"""Subprocess tests: CLI exits cleanly on broken pipes and Ctrl-C.

Long-running subcommands piped into ``head`` (reader hangs up) must not
print a traceback, and a SIGINT must exit 130 — flushing whatever
partial artifact (JSONL trace) the run had accumulated.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def spawn(*argv, **kw):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *argv],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        env=ENV,
        cwd=REPO,
        **kw,
    )


class TestBrokenPipe:
    def test_trace_jsonl_to_closed_pipe_exits_cleanly(self):
        # emulate `repro trace --jsonl - | head` where head hangs up
        # before the trace is written: the reader closes immediately,
        # the child computes for a while, then its write hits EPIPE
        proc = spawn("trace", "--n", "512", "--messages", "12000", "--jsonl", "-")
        proc.stdout.close()  # reader gone
        err = proc.stderr.read().decode()
        rc = proc.wait(timeout=300)
        proc.stderr.close()
        assert rc == 0, err
        assert "Traceback" not in err
        assert "BrokenPipeError" not in err

    def test_fuzz_to_closed_pipe_exits_cleanly(self):
        # fuzz prints per-iteration progress; the reader hangs up early
        proc = spawn("fuzz", "--iters", "300", "--seed", "0", "--max-n", "16")
        proc.stdout.close()
        err = proc.stderr.read().decode()
        rc = proc.wait(timeout=300)
        proc.stderr.close()
        assert rc == 0, err
        assert "Traceback" not in err


class TestKeyboardInterrupt:
    def _interrupt_after(self, proc, delay):
        time.sleep(delay)
        os.kill(proc.pid, signal.SIGINT)

    def test_fuzz_sigint_exits_130_without_traceback(self):
        proc = spawn("fuzz", "--iters", "1000000", "--seed", "0", "--max-n", "16")
        self._interrupt_after(proc, 4.0)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 130, err.decode()
        assert "Traceback" not in err.decode()
        assert "interrupted" in err.decode()

    def test_chaos_sigint_exits_130_without_traceback(self):
        proc = spawn("chaos", "--iters", "100000", "--seed", "0")
        self._interrupt_after(proc, 4.0)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 130, err.decode()
        assert "Traceback" not in err.decode()

    def test_trace_sigint_flushes_partial_jsonl(self, tmp_path):
        # a run that takes >30s gets interrupted at ~8s: exit 130 and
        # the JSONL written so far must still parse and load
        out_path = tmp_path / "partial.jsonl"
        proc = spawn(
            "trace", "--n", "1024", "--messages", "300000",
            "--jsonl", str(out_path),
        )
        self._interrupt_after(proc, 8.0)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 130, err.decode()
        assert "Traceback" not in err.decode()
        assert "partial trace" in out.decode()
        lines = out_path.read_text().splitlines()
        assert lines, "interrupt must still flush the partial trace"
        events = [json.loads(line) for line in lines]
        assert all("type" in e for e in events)
        # the run was cut mid-flight: the partial trace has cycle events
        # but far fewer than a full run would produce
        assert any(e["type"] == "cycle" for e in events)


class TestServeSignals:
    def test_serve_sigint_exits_130_and_unlinks_shm(self):
        before = set(glob.glob("/dev/shm/repro_pi_*"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--n", "16",
             "--shards", "2", "--warm-sets", "1", "--warm-messages", "32"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=ENV,
            cwd=REPO,
            text=True,
        )
        # one served request proves the daemon is fully up (pool, arena,
        # loop) before we interrupt it
        proc.stdin.write('{"id": "warm", "src": [0], "dst": [1]}\n')
        proc.stdin.flush()
        first = proc.stdout.readline()
        assert json.loads(first)["ok"] is True
        os.kill(proc.pid, signal.SIGINT)
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 130, err
        assert "Traceback" not in err
        assert "interrupted" in err
        leaked = set(glob.glob("/dev/shm/repro_pi_*")) - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"
