"""Property-based tests (seeded random, no external dependencies).

Two monotonicity laws the degraded-mode design must obey, checked over
randomly generated fault scenarios:

* *capacity dominance* — the degraded tree's effective capacities are
  levelwise ≤ the pristine tree's, and never negative;
* *load-factor monotonicity* — λ(M) is non-decreasing as wires are
  removed (killing hardware can only concentrate load).

Plus two consequences: routability only shrinks under further damage,
and a schedule valid on the degraded tree is valid on the pristine one.
"""

import numpy as np
import pytest

from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.core.fattree import Direction
from repro.faults import DegradedFatTree, FaultModel
from repro.workloads import uniform_random

SEEDS = range(6)


def random_scenario(ft, seed):
    """A seeded random mix of wire and switch faults."""
    rng = np.random.default_rng(seed)
    model = FaultModel(seed=seed)
    model.kill_random_wires(ft, float(rng.uniform(0.0, 0.5)))
    model.kill_random_switches(ft, int(rng.integers(0, 4)))
    return model


@pytest.mark.parametrize("seed", SEEDS)
def test_effective_capacities_dominated_by_pristine(seed):
    ft = FatTree(64, UniversalCapacity(64, 32, strict=False))
    dft = DegradedFatTree(ft, random_scenario(ft, seed))
    for k in range(ft.depth + 1):
        for d in (Direction.UP, Direction.DOWN):
            eff = dft.cap_vector(k, d)
            assert (eff <= ft.cap(k)).all()
            assert (eff >= 0).all()
        assert dft.cap(k) <= ft.cap(k)
    assert dft.total_wires() <= ft.total_wires()


@pytest.mark.parametrize("seed", SEEDS)
def test_cap_is_min_of_effective_capacity_vectors(seed):
    """The level-uniform ``cap(k)`` is exactly the minimum of the
    per-channel effective capacities at level k, over both directions."""
    ft = FatTree(64, UniversalCapacity(64, 32, strict=False))
    dft = DegradedFatTree(ft, random_scenario(ft, seed))
    for k in range(dft.depth + 1):
        expected = min(
            int(dft.cap_vector(k, Direction.UP).min()),
            int(dft.cap_vector(k, Direction.DOWN).min()),
        )
        assert dft.cap(k) == expected
        assert dft.cap(k) == min(
            dft.chan_cap(k, x, d)
            for x in range(1 << k)
            for d in (Direction.UP, Direction.DOWN)
        )


def test_cap_zero_on_all_dead_levels():
    """Killing the root switch severs every level-1 channel: cap(1) is 0
    (and level 0, the root's own channels, too) while deeper levels keep
    their pristine capacity."""
    ft = FatTree(16)
    dft = DegradedFatTree(ft, FaultModel().kill_switch(0, 0))
    assert dft.cap(0) == 0
    assert dft.cap(1) == 0
    for k in range(2, dft.depth + 1):
        assert dft.cap(k) == ft.cap(k)
    # a whole level killed wire by wire reads as zero as well
    model = FaultModel()
    for x in range(1 << 2):
        model.kill_wires(2, x, ft.cap(2), direction="up")
    dead_up = DegradedFatTree(ft, model)
    assert dead_up.cap(2) == 0
    assert int(dead_up.cap_vector(2, Direction.DOWN).min()) == ft.cap(2)


@pytest.mark.parametrize("seed", SEEDS)
def test_load_factor_monotone_under_wire_removal(seed):
    """Kill wires in increasing fractions; λ(M) never decreases."""
    n = 64
    ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
    m = uniform_random(n, 4 * n, seed=seed)
    lams = []
    for fraction in (0.0, 0.1, 0.2, 0.3, 0.4):
        model = FaultModel(seed=seed).kill_wire_fraction(ft, fraction)
        tree = DegradedFatTree(ft, model) if fraction else ft
        lams.append(load_factor(tree, m))
    assert lams == sorted(lams)


@pytest.mark.parametrize("seed", SEEDS)
def test_load_factor_monotone_under_incremental_random_damage(seed):
    """A growing random fault set (superset chain) never lowers λ(M)."""
    n = 32
    ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
    m = uniform_random(n, 3 * n, seed=seed + 100)
    model = FaultModel(seed=seed)
    prev = load_factor(ft, m)
    rng = np.random.default_rng(seed)
    for _ in range(5):
        level = int(rng.integers(1, 3))  # wide channels only
        index = int(rng.integers(0, 1 << level))
        model.kill_wires(level, index, 1)
        lam = load_factor(DegradedFatTree(ft, model), m)
        assert lam >= prev - 1e-12
        prev = lam


@pytest.mark.parametrize("seed", SEEDS)
def test_routability_shrinks_under_more_damage(seed):
    """Messages routable after extra faults were routable before."""
    ft = FatTree(64)
    m = uniform_random(64, 300, seed=seed)
    rng = np.random.default_rng(seed)
    less = FaultModel(seed=seed).kill_random_switches(ft, 2)
    mask_less = DegradedFatTree(ft, less).routable_mask(m)
    # add two more dead switches on top of the same scenario
    more = FaultModel(seed=seed).kill_random_switches(ft, 2)
    for _ in range(2):
        level = int(rng.integers(1, 4))
        more.kill_switch(level, int(rng.integers(0, 1 << level)))
    mask_more = DegradedFatTree(ft, more).routable_mask(m)
    assert (mask_more <= mask_less).all()


@pytest.mark.parametrize("seed", SEEDS)
def test_degraded_schedule_is_valid_on_pristine_tree(seed):
    """Degraded capacities under-approximate pristine ones, so any
    schedule built for the degraded tree also respects the pristine
    tree's capacities."""
    n = 64
    ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
    model = FaultModel(seed=seed).kill_wire_fraction(ft, 0.25)
    dft = DegradedFatTree(ft, model)
    m = uniform_random(n, 150, seed=seed)
    sched = schedule_theorem1(dft, m)
    sched.validate(dft, m)
    sched.validate(ft, m)
