"""FaultModel unit tests: injection bookkeeping and reproducibility."""

import pytest

from repro.core import FatTree
from repro.core.fattree import Direction
from repro.faults import FaultModel, SwitchFault, WireFault


class TestWireFaults:
    def test_kill_wires_hits_both_directions_by_default(self):
        model = FaultModel().kill_wires(2, 1, 3)
        assert model.killed_wires(2, 1, Direction.UP) == 3
        assert model.killed_wires(2, 1, Direction.DOWN) == 3

    def test_kill_wires_single_direction(self):
        model = FaultModel().kill_wires(2, 1, 3, direction="up")
        assert model.killed_wires(2, 1, Direction.UP) == 3
        assert model.killed_wires(2, 1, Direction.DOWN) == 0

    def test_counts_accumulate(self):
        model = FaultModel().kill_wires(1, 0, 2).kill_wires(1, 0, 1)
        assert model.killed_wires(1, 0, Direction.UP) == 3

    def test_wire_faults_listing_is_sorted(self):
        model = FaultModel().kill_wires(3, 2, 1).kill_wires(1, 0, 2)
        faults = model.wire_faults
        assert all(isinstance(f, WireFault) for f in faults)
        keys = [(f.level, f.index) for f in faults]
        assert keys == sorted(keys)

    @pytest.mark.parametrize("level,index,count", [(-1, 0, 1), (0, -2, 1), (0, 0, -1)])
    def test_invalid_arguments_rejected(self, level, index, count):
        with pytest.raises(ValueError):
            FaultModel().kill_wires(level, index, count)


class TestSwitchFaults:
    def test_kill_switch_is_idempotent(self):
        model = FaultModel().kill_switch(2, 1).kill_switch(2, 1)
        assert model.switch_faults == [SwitchFault(2, 1)]
        assert model.is_dead_switch(2, 1)
        assert not model.is_dead_switch(2, 0)

    def test_invalid_switch_rejected(self):
        with pytest.raises(ValueError):
            FaultModel().kill_switch(-1, 0)


class TestBulkKills:
    def test_kill_wire_fraction_is_deterministic_floor(self):
        ft = FatTree(64)  # cap(1) = 32, cap(2) = 16, ...
        model = FaultModel().kill_wire_fraction(ft, 0.25)
        assert model.killed_wires(1, 0, Direction.UP) == 8
        assert model.killed_wires(2, 3, Direction.DOWN) == 4
        # leaf channels have cap 1: floor(0.25·1) = 0, untouched
        assert model.killed_wires(ft.depth, 5, Direction.UP) == 0

    def test_kill_wire_fraction_levels_subset(self):
        ft = FatTree(64)
        model = FaultModel().kill_wire_fraction(ft, 0.25, levels=[1])
        assert model.killed_wires(1, 1, Direction.UP) == 8
        assert model.killed_wires(2, 0, Direction.UP) == 0

    def test_random_wires_reproducible(self):
        ft = FatTree(64)
        a = FaultModel(seed=11).kill_random_wires(ft, 0.3)
        b = FaultModel(seed=11).kill_random_wires(ft, 0.3)
        assert a.wire_faults == b.wire_faults
        c = FaultModel(seed=12).kill_random_wires(ft, 0.3)
        assert a.wire_faults != c.wire_faults

    def test_random_switches_distinct_and_in_range(self):
        ft = FatTree(64)
        model = FaultModel(seed=3).kill_random_switches(ft, 10)
        faults = model.switch_faults
        assert len(faults) == 10
        assert len(set(faults)) == 10
        for f in faults:
            assert 0 <= f.level < ft.depth
            assert 0 <= f.index < (1 << f.level)

    @pytest.mark.parametrize("fraction", [-0.1, 1.0, 1.5])
    def test_fraction_bounds_enforced(self, fraction):
        ft = FatTree(8)
        with pytest.raises(ValueError):
            FaultModel().kill_wire_fraction(ft, fraction)
        with pytest.raises(ValueError):
            FaultModel().kill_random_wires(ft, fraction)


class TestTransient:
    @pytest.mark.parametrize("rate", [-0.01, 1.0, 2.0])
    def test_loss_rate_validated(self, rate):
        with pytest.raises(ValueError):
            FaultModel(loss_rate=rate)

    def test_repr_mentions_scenario(self):
        model = FaultModel(seed=5, loss_rate=0.1).kill_switch(1, 0)
        assert "loss_rate=0.1" in repr(model)
        assert "switch_faults=1" in repr(model)
