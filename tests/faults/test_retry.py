"""Retry/backoff under transient faults, and the structured timeout.

Covers both delivery loops — the bit-serial hardware simulator
(``run_until_delivered``) and the on-line random-rank scheduler
(``schedule_random_rank``) — under a degraded tree with a positive
``loss_rate``: convergence, attempt accounting, reproducibility, and
``DeliveryTimeout`` instead of an unbounded spin.
"""

from collections import Counter

import pytest

from repro.core import (
    DeliveryTimeout,
    FatTree,
    MessageSet,
    UnroutableError,
    UniversalCapacity,
    schedule_random_rank,
)
from repro.faults import DegradedFatTree, FaultModel
from repro.hardware import run_until_delivered
from repro.workloads import random_permutation, uniform_random


def lossy_tree(n=32, *, loss=0.2, kill=0.0, seed=0):
    ft = FatTree(n, UniversalCapacity(n, n // 2, strict=False))
    model = FaultModel(seed=seed, loss_rate=loss)
    if kill:
        model.kill_wire_fraction(ft, kill)
    return DegradedFatTree(ft, model)


class TestHardwareRetry:
    def test_lossy_delivery_converges_with_attempt_counts(self):
        dft = lossy_tree(loss=0.2, kill=0.125)
        m = random_permutation(32, seed=1)
        out = run_until_delivered(dft, m, seed=2)
        delivered = sum(len(r.delivered) for r in out.reports)
        assert delivered == len(m)  # self-messages deliver trivially
        assert len(out.attempts) == len(m)
        assert all(a >= 1 for a in out.attempts)
        assert out.max_attempts() >= 2  # something was actually lost
        assert sum(out.attempt_histogram().values()) == len(out.attempts)

    def test_loss_rate_read_from_fault_model(self):
        """No explicit fault_rate: the tree's loss_rate drives the loop."""
        dft = lossy_tree(loss=0.3)
        m = random_permutation(32, seed=3)
        out = run_until_delivered(dft, m, seed=4)
        assert out.cycles > 1  # a single clean cycle would suffice loss-free

    def test_reproducible_given_seed(self):
        dft = lossy_tree(loss=0.25)
        m = uniform_random(32, 64, seed=5)
        a = run_until_delivered(dft, m, seed=6)
        b = run_until_delivered(dft, m, seed=6)
        assert a.cycles == b.cycles
        assert a.attempts == b.attempts

    def test_timeout_is_structured(self):
        dft = lossy_tree(loss=0.5)
        m = uniform_random(32, 64, seed=7)
        with pytest.raises(DeliveryTimeout) as exc:
            run_until_delivered(dft, m, seed=8, max_cycles=3)
        err = exc.value
        assert err.cycles == 3
        assert len(err.undelivered) > 0
        assert isinstance(err.attempts, Counter)
        assert isinstance(err, RuntimeError)

    def test_unroutable_raises_before_simulating(self):
        ft = FatTree(32)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(0, 0))
        with pytest.raises(UnroutableError):
            run_until_delivered(dft, MessageSet([0], [31], 32))

    def test_zero_loss_degraded_matches_pristine_cycle_count(self):
        """With no transient faults and no dead wires the degraded
        wrapper is behaviourally identical to the pristine tree."""
        ft = FatTree(32)
        m = uniform_random(32, 128, seed=9)
        base = run_until_delivered(ft, m, seed=10)
        dft = DegradedFatTree(ft, FaultModel())
        wrapped = run_until_delivered(dft, m, seed=10)
        assert wrapped.cycles == base.cycles


class TestOnlineRetry:
    def test_lossy_online_converges(self):
        dft = lossy_tree(loss=0.2)
        m = uniform_random(32, 96, seed=11)
        sched = schedule_random_rank(dft, m, seed=12)
        sched.validate(dft, m)

    def test_online_timeout(self):
        dft = lossy_tree(loss=0.5)
        m = uniform_random(32, 96, seed=13)
        with pytest.raises(DeliveryTimeout):
            schedule_random_rank(dft, m, seed=14, max_cycles=2)

    def test_online_unroutable(self):
        dft = DegradedFatTree(FatTree(32), FaultModel().kill_switch(0, 0))
        with pytest.raises(UnroutableError):
            schedule_random_rank(dft, MessageSet([0], [31], 32))

    def test_explicit_loss_rate_overrides_model(self):
        """Passing loss_rate=0 on a lossy tree gives a clean run."""
        dft = lossy_tree(loss=0.4)
        m = random_permutation(32, seed=15)
        sched = schedule_random_rank(dft, m, seed=16, loss_rate=0.0)
        sched.validate(dft, m)
