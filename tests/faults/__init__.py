"""Tests for the fault-injection / degraded-mode subsystem."""
