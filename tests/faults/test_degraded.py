"""DegradedFatTree: effective capacities, routability, and the stack.

The central contract: a degraded tree is a drop-in ``FatTree`` — every
consumer (load factor, Theorem 1, on-line, buffered, switch simulator)
routes against the surviving hardware through the unchanged APIs.
"""

import numpy as np
import pytest

from repro.core import (
    FatTree,
    MessageSet,
    UnroutableError,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
)
from repro.core.fattree import Direction
from repro.faults import DegradedFatTree, FaultModel
from repro.hardware import run_schedule, run_store_and_forward
from repro.workloads import random_permutation, uniform_random


class TestEffectiveCapacities:
    def test_wire_fault_subtracts(self):
        ft = FatTree(64)  # cap(2) = 16
        dft = DegradedFatTree(ft, FaultModel().kill_wires(2, 1, 5))
        assert dft.chan_cap(2, 1, Direction.UP) == 11
        assert dft.chan_cap(2, 1, Direction.DOWN) == 11
        assert dft.chan_cap(2, 0, Direction.UP) == 16

    def test_level_cap_is_min_over_channels(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_wires(2, 3, 10))
        assert dft.cap(2) == 6
        assert dft.cap(1) == ft.cap(1)

    def test_cap_vector_is_read_only(self):
        dft = DegradedFatTree(FatTree(16), FaultModel().kill_wires(1, 0, 1))
        vec = dft.cap_vector(1, Direction.UP)
        with pytest.raises(ValueError):
            vec[0] = 99

    def test_dead_switch_severs_own_and_child_channels(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(2, 1))
        for d in (Direction.UP, Direction.DOWN):
            assert dft.chan_cap(2, 1, d) == 0
            assert dft.chan_cap(3, 2, d) == 0
            assert dft.chan_cap(3, 3, d) == 0
            assert dft.chan_cap(2, 0, d) == ft.cap(2)

    def test_pristine_model_changes_nothing(self):
        ft = FatTree(32)
        dft = DegradedFatTree(ft, FaultModel())
        for k in range(1, ft.depth + 1):
            assert dft.cap(k) == ft.cap(k)
        assert dft.total_wires() == ft.total_wires()
        assert dft.surviving_fraction() == 1.0


class TestValidation:
    def test_out_of_tree_channel_rejected(self):
        ft = FatTree(16)  # depth 4
        with pytest.raises(ValueError):
            DegradedFatTree(ft, FaultModel().kill_wires(9, 0, 1))
        with pytest.raises(ValueError):
            DegradedFatTree(ft, FaultModel().kill_wires(2, 4, 1))

    def test_switch_at_leaf_level_rejected(self):
        ft = FatTree(16)
        with pytest.raises(ValueError):
            DegradedFatTree(ft, FaultModel().kill_switch(ft.depth, 0))

    def test_overkill_rejected(self):
        ft = FatTree(16)  # cap(2) = 4
        with pytest.raises(ValueError):
            DegradedFatTree(ft, FaultModel().kill_wires(2, 0, 5))


class TestRoutability:
    def test_dead_switch_blocks_subtree_crossings(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(2, 1))
        # subtree of node (2, 1) = leaves 16..31
        crossing = MessageSet([17], [40], 64)
        inside = MessageSet([17], [18], 64)  # below the dead switch
        outside = MessageSet([0], [63], 64)
        assert not dft.routable_mask(crossing)[0]
        assert dft.routable_mask(inside)[0]
        assert dft.routable_mask(outside)[0]

    def test_unroutable_and_check(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(2, 1))
        m = MessageSet([17, 0], [40, 1], 64)
        bad = dft.unroutable(m)
        assert bad.as_pairs() == [(17, 40)]
        with pytest.raises(UnroutableError) as exc:
            dft.check_routable(m)
        assert exc.value.pairs == [(17, 40)]
        assert exc.value.count == 1

    def test_pristine_mask_is_all_true(self):
        dft = DegradedFatTree(FatTree(32), FaultModel().kill_wires(1, 0, 2))
        m = uniform_random(32, 100, seed=0)
        assert dft.routable_mask(m).all()


class TestStackIntegration:
    def test_load_factor_sees_surviving_wires(self):
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
        m = uniform_random(n, 4 * n, seed=1)
        lam0 = load_factor(ft, m)
        dft = DegradedFatTree(ft, FaultModel().kill_wire_fraction(ft, 0.25))
        assert load_factor(dft, m) >= lam0

    def test_load_factor_infinite_over_severed_channel(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(2, 1))
        m = MessageSet([17], [40], 64)
        assert load_factor(dft, m) == float("inf")

    def test_theorem1_schedule_validates_on_degraded_tree(self):
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
        dft = DegradedFatTree(ft, FaultModel().kill_wire_fraction(ft, 0.25))
        m = uniform_random(n, 200, seed=2)
        sched = schedule_theorem1(dft, m)
        sched.validate(dft, m)

    def test_theorem1_raises_unroutable(self):
        ft = FatTree(64)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(1, 0))
        m = MessageSet([0], [63], 64)
        with pytest.raises(UnroutableError):
            schedule_theorem1(dft, m)

    def test_degraded_schedule_runs_clean_on_hardware(self):
        n = 64
        ft = FatTree(n, UniversalCapacity(n, 16, strict=False))
        dft = DegradedFatTree(ft, FaultModel().kill_wire_fraction(ft, 0.25))
        m = random_permutation(n, seed=3)
        sched = schedule_theorem1(dft, m)
        reports = run_schedule(dft, sched)
        assert all(r.losses == 0 for r in reports)
        assert sum(len(r.delivered) for r in reports) == len(
            m.without_self_messages()
        )

    def test_buffered_design_routes_degraded(self):
        n = 32
        ft = FatTree(n)
        dft = DegradedFatTree(ft, FaultModel().kill_wires(1, 0, 8))
        m = random_permutation(n, seed=4)
        run = run_store_and_forward(dft, m)
        assert run.makespan > 0
        assert len(run.latencies) == len(m.without_self_messages())

    def test_buffered_design_raises_unroutable(self):
        ft = FatTree(32)
        dft = DegradedFatTree(ft, FaultModel().kill_switch(0, 0))
        with pytest.raises(UnroutableError):
            run_store_and_forward(dft, MessageSet([0], [31], 32))


class TestAccounting:
    def test_summary_and_wire_totals_agree(self):
        ft = FatTree(64)
        dft = DegradedFatTree(
            ft, FaultModel().kill_wires(1, 0, 4).kill_switch(3, 0)
        )
        rows = dft.summary()
        surviving = sum(int(r["wires"].split("/")[0]) for r in rows)
        pristine = sum(int(r["wires"].split("/")[1]) for r in rows)
        assert surviving == dft.total_wires()
        assert pristine == ft.total_wires()
        assert 0 < dft.surviving_fraction() < 1.0

    def test_effective_never_negative(self):
        ft = FatTree(32)
        model = FaultModel().kill_wire_fraction(ft, 0.5).kill_switch(1, 1)
        dft = DegradedFatTree(ft, model)
        for k in range(dft.depth + 1):
            for d in (Direction.UP, Direction.DOWN):
                assert int(dft.cap_vector(k, d).min()) >= 0
