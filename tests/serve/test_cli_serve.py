"""Subprocess tests for ``python -m repro serve`` over stdin/stdout."""

import glob
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO / "src")}


def run_serve(lines, *argv, timeout=300):
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", *argv],
        input="\n".join(lines) + "\n",
        capture_output=True,
        text=True,
        timeout=timeout,
        env=ENV,
        cwd=REPO,
    )
    return proc


def request_line(i, *, n=16, m=4, tenant="default", kernel="greedy", seed=None):
    rng_seed = seed if seed is not None else i
    # deterministic little multisets without importing numpy here
    src = [(rng_seed * 7 + k * 3) % n for k in range(m)]
    dst = [(rng_seed * 11 + k * 5 + 1) % n for k in range(m)]
    return json.dumps(
        {"id": f"c{i}", "src": src, "dst": dst, "tenant": tenant, "kernel": kernel}
    )


class TestServeStdin:
    def test_fifty_requests_two_shards_clean_exit(self):
        before = set(glob.glob("/dev/shm/repro_pi_*"))
        lines = [
            request_line(i, kernel="greedy" if i % 2 else "random_rank")
            for i in range(50)
        ]
        lines.append('{"op": "metrics", "id": "m"}')
        proc = run_serve(
            lines, "--n", "16", "--shards", "2",
            "--warm-sets", "1", "--warm-messages", "32",
        )
        assert proc.returncode == 0, proc.stderr
        assert "Traceback" not in proc.stderr
        responses = [json.loads(line) for line in proc.stdout.splitlines()]
        assert len(responses) == 51
        by_id = {r["id"]: r for r in responses}
        assert all(by_id[f"c{i}"]["ok"] for i in range(50))
        metrics = by_id["m"]
        assert metrics["op"] == "metrics"
        leaked = set(glob.glob("/dev/shm/repro_pi_*")) - before
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_inline_mode_and_tenant_flag(self):
        lines = [
            request_line(0),
            request_line(1, tenant="spotty"),
        ]
        proc = run_serve(
            lines, "--n", "16", "--shards", "0", "--tenant", "spotty:0.25",
        )
        assert proc.returncode == 0, proc.stderr
        responses = {r["id"]: r for r in map(json.loads, proc.stdout.splitlines())}
        assert responses["c0"]["ok"] is True
        spotty = responses["c1"]
        # the degraded tenant either schedules or refuses 422 — but it
        # must answer, tagged with its own tenant
        assert spotty["tenant"] == "spotty"
        assert spotty["ok"] or spotty["code"] == 422

    def test_bad_tenant_spec_exits_2(self):
        proc = run_serve([], "--n", "16", "--tenant", "oops:1.5")
        assert proc.returncode == 2
        assert "invalid --tenant" in proc.stderr

    def test_eof_with_no_requests_exits_0(self):
        proc = run_serve([], "--n", "16", "--shards", "0")
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout == ""
