"""Wire-format tests: parsing, validation, serialisation round-trips."""

import json

import pytest

from repro.serve.protocol import (
    CODE_OVERLOADED,
    ControlRequest,
    ProtocolError,
    Refusal,
    RouteRequest,
    RouteResponse,
    parse_request,
)


def line(**kw):
    base = {"id": "r1", "src": [0, 1], "dst": [2, 3]}
    base.update(kw)
    return json.dumps(base)


class TestParseRequest:
    def test_minimal_defaults(self):
        req = parse_request(line())
        assert req == RouteRequest(id="r1", src=(0, 1), dst=(2, 3))
        assert req.kernel == "greedy"
        assert req.tenant == "default"
        assert req.detail is False

    def test_full_fields(self):
        req = parse_request(
            line(tenant="t", kernel="random_rank", order="given", seed=9, detail=True)
        )
        assert (req.tenant, req.kernel, req.order, req.seed, req.detail) == (
            "t", "random_rank", "given", 9, True,
        )

    def test_metrics_op(self):
        req = parse_request('{"op": "metrics", "id": "m"}')
        assert req == ControlRequest(op="metrics", id="m")

    @pytest.mark.parametrize(
        "bad",
        [
            "not json",
            "[1, 2]",
            '{"src": [0], "dst": [1]}',  # no id
            line(src="zero"),
            line(src=[0.5], dst=[1]),
            line(src=[True], dst=[1]),
            line(src=[0, 1], dst=[2]),  # length mismatch
            line(kernel="quantum"),
            line(order="shuffled"),
            line(seed="zero"),
            line(seed=True),
            line(detail=1),
            line(tenant=7),
            '{"op": "reboot", "id": "x"}',
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(ProtocolError):
            parse_request(bad)

    def test_error_carries_request_id(self):
        with pytest.raises(ProtocolError) as exc:
            parse_request(line(kernel="quantum"))
        assert exc.value.request_id == "r1"

    def test_message_set_range_checked_against_n(self):
        req = parse_request(line(src=[0, 99], dst=[1, 2]))
        with pytest.raises(ValueError):
            req.message_set(16)
        ms = req.message_set(128)
        assert len(ms) == 2

    def test_compat_key_groups_equivalent_requests(self):
        a = parse_request(line(id="a", seed=4))
        b = parse_request(line(id="b", src=[7], dst=[8], seed=4))
        c = parse_request(line(id="c", seed=5))
        assert a.compat_key() == b.compat_key()
        assert a.compat_key() != c.compat_key()


class TestSerialisation:
    def test_response_round_trip(self):
        resp = RouteResponse(
            id="r1", tenant="default", kernel="greedy", num_cycles=2,
            delivered=5, n_self=1, lam=2.5, elapsed_ms=1.25,
            cycles=(((0, 1), (2, 3)), ((4, 5),)),
        )
        out = json.loads(resp.to_json())
        assert out["ok"] is True
        assert out["num_cycles"] == 2
        assert out["cycles"] == [[[0, 1], [2, 3]], [[4, 5]]]

    def test_response_omits_cycles_without_detail(self):
        resp = RouteResponse(
            id="r1", tenant="default", kernel="greedy", num_cycles=1,
            delivered=1, n_self=0, lam=1.0, elapsed_ms=0.5,
        )
        assert "cycles" not in json.loads(resp.to_json())

    def test_refusal_round_trip(self):
        ref = Refusal(
            id="r9", code=CODE_OVERLOADED, reason="load ceiling",
            tenant="t", extra={"lam": 3.0},
        )
        out = json.loads(ref.to_json())
        assert out == {
            "id": "r9", "ok": False, "code": 429, "reason": "load ceiling",
            "tenant": "t", "lam": 3.0,
        }
