"""Shard-worker tests: batch parity, per-set failure isolation, pool modes."""

import numpy as np
import pytest

from repro.core import FatTree, schedule_greedy_first_fit, schedule_random_rank
from repro.faults import DegradedFatTree, FaultModel
from repro.perf.batch import batch_schedule
from repro.serve.protocol import CODE_UNROUTABLE
from repro.serve.shards import ShardPool, _pool_call, run_shard_batch
from repro.workloads import uniform_random


def sets_for(n, count, m, seed0=0):
    return [uniform_random(n, m, seed=seed0 + i) for i in range(count)]


def severed_tree(n=32, seed=5):
    """A degraded tree with at least one unroutable endpoint pair."""
    base = FatTree(n)
    # killing the deepest internal switch above leaf 0 severs its up-path
    model = FaultModel(seed=seed).kill_switch(base.depth - 1, 0)
    return DegradedFatTree(base, model)


class TestRunShardBatch:
    def test_matches_batch_schedule(self):
        ft = FatTree(32)
        sets = sets_for(32, 4, 24)
        results = run_shard_batch(ft, sets, kernel="greedy", detail=True)
        expected = batch_schedule(ft, sets, kernel="greedy")
        assert len(results) == 4
        for res, sched in zip(results, expected):
            assert res["ok"] is True
            assert res["num_cycles"] == sched.num_cycles
            assert res["delivered"] == sum(len(c) for c in sched.cycles)
            assert res["cycles"] == [
                [(int(i), int(j)) for i, j in c.as_pairs()] for c in sched.cycles
            ]

    def test_random_rank_seed_parity_with_solo(self):
        ft = FatTree(32)
        sets = sets_for(32, 3, 20, seed0=10)
        results = run_shard_batch(
            ft, sets, kernel="random_rank", seed=13, detail=True
        )
        for res, ms in zip(results, sets):
            solo = schedule_random_rank(ft, ms, seed=13)
            assert res["num_cycles"] == solo.num_cycles
            assert res["cycles"] == [
                [(int(i), int(j)) for i, j in c.as_pairs()] for c in solo.cycles
            ]

    def test_detail_false_omits_cycles(self):
        ft = FatTree(16)
        (res,) = run_shard_batch(ft, sets_for(16, 1, 8))
        assert res["ok"] and "cycles" not in res

    def test_empty_batch(self):
        assert run_shard_batch(FatTree(16), []) == []

    def test_unroutable_set_isolated_from_healthy_neighbours(self):
        from repro.core.message import MessageSet

        dft = severed_tree()  # leaves 0 and 1 are cut off

        def routable_set(seed):
            ms = uniform_random(32, 16, seed=seed)
            # steer clear of the severed leaves: remap 0/1 upward
            return MessageSet(np.maximum(ms.src, 2), np.maximum(ms.dst, 2), 32)

        healthy = [routable_set(40), routable_set(42)]
        assert all(dft.routable_mask(ms).all() for ms in healthy)
        sick = uniform_random(32, 8, seed=41)
        src = sick.src.copy(); dst = sick.dst.copy()
        src[0], dst[0] = 0, 9  # force a message through the severed leaf
        sick = MessageSet(src, dst, 32)
        assert not dft.routable_mask(sick).all()

        results = run_shard_batch(
            dft, [healthy[0], sick, healthy[1]], kernel="greedy", detail=True
        )
        assert results[1]["ok"] is False
        assert results[1]["code"] == CODE_UNROUTABLE
        # the healthy neighbours still come back bit-identical to solo
        for res, ms in ((results[0], healthy[0]), (results[2], healthy[1])):
            solo = schedule_greedy_first_fit(dft, ms)
            assert res["ok"] is True
            assert res["cycles"] == [
                [(int(i), int(j)) for i, j in c.as_pairs()] for c in solo.cycles
            ]


class TestPoolCall:
    def payload(self, ft, sets, **kw):
        base = {
            "tree": ft,
            "sets": [(ms.src, ms.dst) for ms in sets],
            "kernel": "greedy",
            "order": "longest-first",
            "seed": 0,
            "detail": False,
        }
        base.update(kw)
        return base

    def test_returns_results_and_metrics(self):
        ft = FatTree(16)
        out = _pool_call(self.payload(ft, sets_for(16, 2, 8)))
        assert [r["ok"] for r in out["results"]] == [True, True]
        metrics = out["metrics"]
        # the metrics registry is picklable and merge-able
        import pickle

        clone = pickle.loads(pickle.dumps(metrics))
        assert clone.counter_value("pathindex.cache", result="miss") >= 1


class TestShardPool:
    def test_inline_mode_runs_synchronously(self):
        ft = FatTree(16)
        with ShardPool(0) as pool:
            fut = pool.submit(
                TestPoolCall().payload(ft, sets_for(16, 1, 8))
            )
            assert fut.done()
            assert fut.result()["results"][0]["ok"] is True

    def test_process_mode_round_trips(self):
        ft = FatTree(16)
        with ShardPool(2) as pool:
            futs = [
                pool.submit(TestPoolCall().payload(ft, sets_for(16, 1, 8, seed0=i)))
                for i in range(4)
            ]
            outs = [f.result(timeout=120) for f in futs]
        assert all(o["results"][0]["ok"] for o in outs)

    def test_process_and_inline_agree(self):
        ft = FatTree(32)
        payload = TestPoolCall().payload(
            ft, sets_for(32, 3, 16), kernel="random_rank", seed=3, detail=True
        )
        inline = ShardPool(0).submit(dict(payload)).result()
        with ShardPool(1) as pool:
            remote = pool.submit(dict(payload)).result(timeout=120)
        assert inline["results"] == remote["results"]

    def test_negative_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardPool(-1)
