"""End-to-end daemon tests: concurrency, tenancy, backpressure, metrics.

The headline test drives 220 concurrent requests through a real
2-process shard pool with mixed tenants (one of them a severed
``DegradedFatTree`` fault domain) and asserts every response's
delivered multiset — in fact its exact cycle list — equals a solo
``batch_schedule``-equivalent call on a freshly built tree.  Batching,
sharding, pickling and tenancy must all be invisible to results.
"""

import asyncio
import json
from collections import Counter

import numpy as np
import pytest

from repro.core import FatTree, schedule_greedy_first_fit, schedule_random_rank
from repro.core.message import MessageSet
from repro.faults import DegradedFatTree, FaultModel
from repro.serve import ServeConfig, ServeEngine
from repro.serve.protocol import (
    CODE_BAD_REQUEST,
    CODE_OVERLOADED,
    CODE_QUEUE_FULL,
    CODE_UNROUTABLE,
    RouteRequest,
)
from repro.workloads import uniform_random

N = 32


def spotty_tree():
    """The faulted tenant: leaves 0 and 1 severed."""
    base = FatTree(N)
    model = FaultModel(seed=5).kill_switch(base.depth - 1, 0)
    return DegradedFatTree(base, model)


def routable_set(seed, m=12):
    ms = uniform_random(N, m, seed=seed)
    return MessageSet(np.maximum(ms.src, 2), np.maximum(ms.dst, 2), N)


def severed_set(seed, m=6):
    ms = routable_set(seed, m)
    src = ms.src.copy()
    src[0] = 0  # leaf 0 is cut off on the spotty tenant
    return MessageSet(src, ms.dst, N)


def as_request(i, ms, *, tenant, kernel, seed=0):
    return RouteRequest(
        id=f"r{i}",
        src=tuple(int(x) for x in ms.src),
        dst=tuple(int(x) for x in ms.dst),
        tenant=tenant,
        kernel=kernel,
        seed=seed,
        detail=True,
    )


def solo_cycles(tree, ms, kernel, seed):
    """The solo-call reference the batch contract guarantees bit-parity with."""
    if kernel == "greedy":
        sched = schedule_greedy_first_fit(tree, ms)
    else:
        sched = schedule_random_rank(tree, ms, seed=seed)
    return [[(int(i), int(j)) for i, j in c.as_pairs()] for c in sched.cycles]


def run(coro, timeout=300):
    return asyncio.run(asyncio.wait_for(coro, timeout))


class TestEndToEnd:
    def test_220_concurrent_requests_two_shards_mixed_tenants(self):
        cfg = ServeConfig(
            n=N,
            shards=2,
            lambda_ceiling=1e9,
            max_pending=10_000,
            max_batch=16,
            batch_window_s=0.01,
        )
        engine = ServeEngine(cfg, tenants={"spotty": spotty_tree()})
        cases = []  # (request, message_set, expect_unroutable)
        for i in range(220):
            kernel = "greedy" if i % 2 == 0 else "random_rank"
            if i % 4 == 3:  # spotty tenant, routable traffic
                ms, tenant, sick = routable_set(i), "spotty", False
            elif i % 20 == 1:  # spotty tenant, severed traffic
                ms, tenant, sick = severed_set(i), "spotty", True
            else:  # default tenant
                ms, tenant, sick = uniform_random(N, 12, seed=i), "default", False
            cases.append(
                (as_request(i, ms, tenant=tenant, kernel=kernel, seed=i % 3), ms, sick)
            )

        async def drive():
            return await asyncio.gather(
                *(engine.submit(req) for req, _, _ in cases)
            )

        try:
            responses = run(drive())
        finally:
            engine.close()

        solo_trees = {"default": FatTree(N), "spotty": spotty_tree()}
        n_sick = 0
        for (req, ms, sick), resp in zip(cases, responses):
            assert resp["id"] == req.id
            if sick:
                n_sick += 1
                assert resp["ok"] is False
                assert resp["code"] == CODE_UNROUTABLE
                continue
            assert resp["ok"] is True, resp
            expected = solo_cycles(solo_trees[req.tenant], ms, req.kernel, req.seed)
            got = [[tuple(p) for p in cycle] for cycle in resp["cycles"]]
            # the contract the batcher must never break: delivered
            # multiset equality with the solo call …
            assert Counter(p for c in got for p in c) == Counter(
                p for c in expected for p in c
            )
            # … which the kernels' bit-parity strengthens to exact cycles
            assert got == expected
            assert resp["num_cycles"] == len(expected)
        assert n_sick >= 10  # the faulted tenant really was exercised
        # coalescing actually happened: fewer dispatches than requests
        dispatches = sum(
            value
            for kind, name, _, value in engine.metrics.series()
            if kind == "counter" and name == "serve.dispatches"
        )
        assert 0 < dispatches < len(cases)

    def test_worker_metrics_merge_into_engine(self):
        cfg = ServeConfig(n=16, shards=2, batch_window_s=0.002, max_batch=8)
        engine = ServeEngine(cfg)
        reqs = [
            as_request(i, uniform_random(16, 8, seed=i), tenant="default",
                       kernel="greedy")
            for i in range(6)
        ]

        async def drive():
            return await asyncio.gather(*(engine.submit(r) for r in reqs))

        try:
            responses = run(drive())
            text = engine.metrics_text()
        finally:
            engine.close()
        assert all(r["ok"] for r in responses)
        # worker-side counters (path-index activity) merged into the
        # engine registry and render /metrics-style
        assert "serve_requests" in text
        assert "pathindex_cache" in text
        assert "serve_latency_seconds_count" in text


class TestBackpressure:
    def test_overload_returns_structured_429_never_hangs(self):
        cfg = ServeConfig(
            n=N,
            shards=0,  # inline: admission behaviour is fully deterministic
            lambda_ceiling=4.5,
            max_pending=10_000,
            max_batch=64,
            batch_window_s=0.05,
        )
        engine = ServeEngine(cfg)
        # every request has λ = 4.0 (4 identical messages saturating one
        # channel), so exactly one fits under the 4.5 ceiling at a time
        src = (2, 2, 2, 2)
        dst = (9, 9, 9, 9)
        reqs = [
            RouteRequest(id=f"b{i}", src=src, dst=dst, seed=0) for i in range(30)
        ]

        async def drive():
            return await asyncio.gather(*(engine.submit(r) for r in reqs))

        try:
            responses = run(drive(), timeout=120)  # bounded: must not hang
        finally:
            engine.close()
        ok = [r for r in responses if r["ok"]]
        refused = [r for r in responses if not r["ok"]]
        assert len(ok) >= 1
        assert len(refused) >= 1
        assert len(ok) + len(refused) == 30
        for r in refused:
            assert r["code"] == CODE_OVERLOADED
            assert "ceiling" in r["reason"]
            assert r["id"].startswith("b")
            assert r["lam"] == pytest.approx(4.0)

    def test_queue_full_returns_503(self):
        cfg = ServeConfig(
            n=N, shards=0, lambda_ceiling=1e9, max_pending=2,
            max_batch=64, batch_window_s=0.05,
        )
        engine = ServeEngine(cfg)
        reqs = [
            as_request(i, uniform_random(N, 4, seed=i), tenant="default",
                       kernel="greedy")
            for i in range(10)
        ]

        async def drive():
            return await asyncio.gather(*(engine.submit(r) for r in reqs))

        try:
            responses = run(drive(), timeout=120)
        finally:
            engine.close()
        codes = Counter(r.get("code") for r in responses if not r["ok"])
        assert codes[CODE_QUEUE_FULL] >= 1
        assert sum(1 for r in responses if r["ok"]) >= 1


class TestRequestValidation:
    @pytest.fixture()
    def engine(self):
        eng = ServeEngine(ServeConfig(n=16, shards=0, batch_window_s=0.001))
        yield eng
        eng.close()

    def test_unknown_tenant_refused(self, engine):
        req = as_request(0, uniform_random(16, 4, seed=0), tenant="ghost",
                         kernel="greedy")
        resp = run(engine.submit(req))
        assert resp["ok"] is False and resp["code"] == CODE_BAD_REQUEST
        assert "ghost" in resp["reason"]

    def test_out_of_range_endpoints_refused(self, engine):
        req = RouteRequest(id="x", src=(0, 99), dst=(1, 2))
        resp = run(engine.submit(req))
        assert resp["ok"] is False and resp["code"] == CODE_BAD_REQUEST

    def test_submit_line_round_trip(self, engine):
        out = run(
            engine.submit_line('{"id": "L", "src": [3], "dst": [7]}')
        )
        resp = json.loads(out)
        assert resp["id"] == "L" and resp["ok"] is True

    def test_submit_line_bad_json_refused(self, engine):
        resp = json.loads(run(engine.submit_line("{nope")))
        assert resp["ok"] is False and resp["code"] == CODE_BAD_REQUEST

    def test_metrics_op_line(self, engine):
        run(engine.submit_line('{"id": "w", "src": [3], "dst": [7]}'))
        out = json.loads(run(engine.submit_line('{"op": "metrics", "id": "m"}')))
        assert out["ok"] is True and out["op"] == "metrics"
        assert "serve_requests" in out["text"]

    def test_mismatched_tenant_n_rejected_at_construction(self):
        with pytest.raises(ValueError):
            ServeEngine(
                ServeConfig(n=16, shards=0), tenants={"big": FatTree(64)}
            )
