"""Admission-control and coalescing unit tests (no event loop needed)."""

import pytest

from repro.serve.batcher import AdmissionController, PendingRequest, RequestBatcher
from repro.serve.protocol import CODE_OVERLOADED, CODE_QUEUE_FULL, RouteRequest


def req(i, **kw):
    return RouteRequest(id=str(i), src=(0,), dst=(1,), **kw)


def pending(i, **kw):
    return PendingRequest(req(i, **kw), None, None)


class TestAdmissionController:
    def test_admits_within_ceiling(self):
        ac = AdmissionController(lambda_ceiling=10.0, max_pending=8)
        assert ac.try_admit(4.0) is None
        assert ac.try_admit(6.0) is None
        assert ac.in_flight_lambda == pytest.approx(10.0)

    def test_refuses_past_ceiling_with_429(self):
        ac = AdmissionController(lambda_ceiling=10.0, max_pending=8)
        assert ac.try_admit(9.0) is None
        verdict = ac.try_admit(1.5)
        assert verdict is not None
        code, reason = verdict
        assert code == CODE_OVERLOADED
        assert "ceiling" in reason
        # a refusal must not consume budget
        assert ac.in_flight_lambda == pytest.approx(9.0)
        assert ac.in_flight_requests == 1

    def test_release_restores_budget(self):
        ac = AdmissionController(lambda_ceiling=10.0, max_pending=8)
        ac.try_admit(9.0)
        ac.release(9.0)
        assert ac.try_admit(9.5) is None

    def test_queue_full_refuses_with_503(self):
        ac = AdmissionController(lambda_ceiling=1e9, max_pending=2)
        assert ac.try_admit(1.0) is None
        assert ac.try_admit(1.0) is None
        code, reason = ac.try_admit(1.0)
        assert code == CODE_QUEUE_FULL
        assert "queue full" in reason

    def test_oversized_single_request_refused_outright(self):
        ac = AdmissionController(lambda_ceiling=2.0, max_pending=8)
        code, _ = ac.try_admit(5.0)
        assert code == CODE_OVERLOADED

    @pytest.mark.parametrize("kw", [
        {"lambda_ceiling": 0, "max_pending": 1},
        {"lambda_ceiling": -1.0, "max_pending": 1},
        {"lambda_ceiling": 1.0, "max_pending": 0},
    ])
    def test_invalid_config_rejected(self, kw):
        with pytest.raises(ValueError):
            AdmissionController(**kw)


class TestRequestBatcher:
    def test_groups_by_compat_key(self):
        b = RequestBatcher(max_batch=8)
        b.add(pending(1, seed=0))
        b.add(pending(2, seed=0))
        b.add(pending(3, seed=1))
        assert len(b) == 3
        same = b.drain(req(0, seed=0).compat_key())
        assert [p.request.id for p in same] == ["1", "2"]
        assert len(b) == 1

    def test_first_and_full_signals(self):
        b = RequestBatcher(max_batch=2)
        assert b.add(pending(1)) == (True, False)
        assert b.add(pending(2)) == (False, True)
        b.drain(req(1).compat_key())
        # a fresh group after draining signals first again
        assert b.add(pending(3)) == (True, False)

    def test_drain_missing_key_is_empty(self):
        b = RequestBatcher(max_batch=2)
        assert b.drain(("nope",)) == []

    def test_drain_all_clears_everything(self):
        b = RequestBatcher(max_batch=8)
        b.add(pending(1, seed=0))
        b.add(pending(2, seed=1))
        groups = b.drain_all()
        assert sorted(len(g) for g in groups) == [1, 1]
        assert len(b) == 0

    def test_invalid_max_batch(self):
        with pytest.raises(ValueError):
            RequestBatcher(max_batch=0)
