#!/usr/bin/env python
"""The Theorem 10 machinery, one stage at a time.

Walks a hypercube through the full §V-§VI pipeline with the intermediate
objects printed at each step:

1. lay the competitor out in 3-D (its Θ(n^{3/2}) wiring volume);
2. Theorem 5: cut the volume into an (O(v^{2/3}), ∛4) decomposition tree;
3. Theorem 8 (Lemma 6 pearls + Lemma 7 forests): balance it;
4. identify processors with fat-tree leaves, route the hypercube's
   traffic, and compare against the O(lg³ n) guarantee.

Run:  python examples/decomposition_pipeline.py
"""

from repro.analysis import print_table
from repro.core import load_factor, schedule_theorem1
from repro.networks import Hypercube
from repro.universality import embed_network
from repro.vlsi import (
    balance_decomposition,
    cutting_plane_tree,
    theorem5_bandwidth,
    theorem8_bound,
    universal_fattree_for_volume,
)


def main() -> None:
    n = 256
    net = Hypercube(n)
    layout = net.layout()
    print(f"1. layout: {n}-node hypercube in a box of volume {layout.volume:.0f}")
    print(f"   (bisection width {net.bisection_width()} forces Θ(n^1.5) volume)\n")

    tree = cutting_plane_tree(layout)
    tree.validate()
    rows = [
        {
            "level i": i,
            "measured w_i": tree.level_bandwidths[i],
            "Thm 5 bound": theorem5_bandwidth(layout.volume, i),
            "w_i / w_{i+3}": (
                tree.level_bandwidths[i] / tree.level_bandwidths[i + 3]
                if i + 3 <= tree.depth
                else "-"
            ),
        }
        for i in range(0, min(7, tree.depth))
    ]
    print_table(rows, title="2. Theorem 5 — cutting-plane decomposition tree")
    print("   (bandwidth falls by exactly 4 every three cuts: the ∛4 rate)\n")

    bal = balance_decomposition(tree)
    bal.validate_balance()
    rows = [
        {
            "level j": j,
            "balanced w'_j": bal.level_bandwidths[j],
            "Thm 8 bound 4·Σw_i": theorem8_bound(
                tree.level_bandwidths, min(j, tree.depth)
            ),
        }
        for j in range(0, min(6, bal.depth))
    ]
    print_table(rows, title="3. Theorem 8 — balanced decomposition tree")
    print(
        f"   every node splits its processors ±1 (depth {bal.depth} "
        f"≈ lg n = {net.dim}) while keeping at most two leaf runs\n"
    )

    ft = universal_fattree_for_volume(n, layout.volume)
    emb = embed_network(net, ft)
    traffic = emb.translate(net.neighbor_message_set())
    lam = load_factor(ft, traffic)
    sched = schedule_theorem1(ft, traffic)
    ticks = 2 * ft.depth - 1
    slowdown = sched.num_cycles * ticks  # t = 1 for a neighbour round
    print("4. Theorem 10 — simulate one hypercube step on the fat-tree:")
    print(f"   fat-tree of equal volume has root capacity {ft.root_capacity}")
    print(f"   λ(M) = {lam:.2f}, schedule = {sched.num_cycles} delivery cycles")
    print(f"   slowdown = {sched.num_cycles} × {ticks} ticks = {slowdown}")
    print(f"   O(lg³ n) guarantee  = {4 * net.dim ** 3}")


if __name__ == "__main__":
    main()
