#!/usr/bin/env python
"""Quickstart: build a fat-tree, route a message set, verify the bounds.

Walks through the paper's core loop in a few lines:

1. build a *universal fat-tree* (Leiserson 1985, §IV) — parameterised in
   both processor count n and root capacity w;
2. generate traffic and compute its *load factor* λ(M) — the lower bound
   on delivery cycles (§III);
3. schedule it off-line with Theorem 1 and check d = O(λ·lg n);
4. run the schedule through the bit-serial switch simulator (Figs. 2-3)
   and confirm zero congestion losses.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    FatTree,
    MessageSet,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
    theorem1_cycle_bound,
)
from repro.hardware import run_schedule


def main() -> None:
    n, w = 256, 64  # 256 processors, root capacity 64 wires
    ft = FatTree(n, UniversalCapacity(n, w))
    print(f"fat-tree: {ft}")
    print(f"channel capacities by level (root -> leaves): {ft.capacity.caps()}")
    print(f"total wires: {ft.total_wires()}")

    # random traffic: 2000 messages between random processors
    rng = np.random.default_rng(42)
    messages = MessageSet(rng.integers(0, n, 2000), rng.integers(0, n, 2000), n)

    lam = load_factor(ft, messages)
    print(f"\nworkload: {len(messages)} messages, load factor λ(M) = {lam:.2f}")
    print(f"  -> no schedule can beat ceil(λ) = {int(np.ceil(lam))} delivery cycles")

    schedule = schedule_theorem1(ft, messages)
    schedule.validate(ft, messages)
    bound = theorem1_cycle_bound(ft, lam)
    print(f"\nTheorem 1 off-line schedule: d = {schedule.num_cycles} cycles")
    print(f"  (paper's bound 2·ceil(λ)·lg n = {bound})")
    print(f"  cycles per tree level: {schedule.per_level_cycles}")

    reports = run_schedule(ft, schedule)
    delivered = sum(len(r.delivered) for r in reports)
    ticks = max(r.wave_ticks for r in reports)
    print(f"\nswitch simulator: {delivered} messages delivered, 0 lost")
    print(f"  each delivery cycle takes {ticks} switch ticks = 2·lg n - 1")


if __name__ == "__main__":
    main()
