#!/usr/bin/env python
"""§VII engineering guidance as code: "one should build the biggest
fat-tree that one can afford, and the architecture automatically ensures
that communication bandwidth is effectively utilized."

Given a hardware (volume) budget, this example sizes the universal
fat-tree (§IV: root capacity Θ(v^{2/3}/lg(n/v^{2/3}))) and shows how the
same application traffic speeds up as the budget grows — with *identical
application code*, the paper's portability point.

Run:  python examples/capacity_planning.py
"""

from repro.analysis import print_table
from repro.core import load_factor, schedule_theorem1
from repro.vlsi import (
    max_volume,
    min_volume,
    root_capacity_for_volume,
    total_components,
    universal_fattree_for_volume,
)
from repro.core.tree import ilog2
from repro.workloads import butterfly_exchange


def main() -> None:
    n = 4096
    lo, hi = min_volume(n), max_volume(n)
    print(f"n = {n} processors")
    print(f"meaningful volume range: Ω(n·lg n) = {lo:.0f}  …  Θ(n^1.5) = {hi:.0f}")

    # the application: the top butterfly exchange i <-> i + n/2 — one
    # message per processor, every one crossing the root.  Interior
    # bandwidth is exactly what this traffic's speed is bought with
    # (each processor still injects only one message, so the unit leaf
    # channels are never the bottleneck).
    traffic = butterfly_exchange(n, ilog2(n) - 1)

    rows = []
    budgets = sorted({lo, 2 * lo, 4 * lo, hi / 4, hi / 2, hi})
    for v in budgets:
        ft = universal_fattree_for_volume(n, v)
        lam = load_factor(ft, traffic)
        sched = schedule_theorem1(ft, traffic)
        rows.append(
            {
                "volume budget": v,
                "root capacity": root_capacity_for_volume(n, v),
                "components": total_components(ft),
                "λ(M)": lam,
                "delivery cycles": sched.num_cycles,
            }
        )
    print_table(
        rows,
        title="the same traffic on bigger and bigger fat-trees",
    )
    speedup = rows[0]["delivery cycles"] / rows[-1]["delivery cycles"]
    print(
        f"\n{speedup:.1f}x speedup from the largest budget — and the code"
        "\n(the message set and the scheduler) never changed: \"algorithms are"
        "\nthe same no matter how big the fat-tree is\" (§VII)."
    )


if __name__ == "__main__":
    main()
