#!/usr/bin/env python
"""Theorem 10 end to end: simulate rival networks on an equal-volume
fat-tree.

For each competitor R (mesh, hypercube, shuffle-exchange, binary tree):

1. lay R out in 3-D (its wiring volume);
2. cut the volume into a decomposition tree (Theorem 5), balance it with
   the pearl argument (Theorem 8 / Corollary 9);
3. identify R's processors with the leaves of the universal fat-tree of
   the same volume;
4. deliver one of R's communication rounds on the fat-tree and compare
   the measured slowdown with the O(lg³ n) guarantee.

Run:  python examples/universality_demo.py
"""

from repro.analysis import print_table
from repro.analysis.bounds import theorem10_slowdown
from repro.networks import (
    BinaryTreeNetwork,
    Hypercube,
    Mesh2D,
    ShuffleExchange,
)
from repro.universality import simulate_network_on_fattree
from repro.workloads import random_permutation


def main() -> None:
    n = 256
    competitors = [
        Mesh2D(n),
        Hypercube(n),
        ShuffleExchange(n),
        BinaryTreeNetwork(n),
    ]

    rows = []
    for net in competitors:
        messages = net.neighbor_message_set()
        if len(messages) == 0:
            continue
        res = simulate_network_on_fattree(net, messages, t=1)
        rows.append(
            {
                "network R": net.name,
                "volume v": res.volume,
                "FT root cap": res.root_capacity,
                "λ(M)": res.load_factor,
                "cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "O(lg³n) bound": theorem10_slowdown(n),
                "within": res.slowdown <= res.bound(),
            }
        )
    print_table(
        rows,
        title=f"one neighbour round of R on the equal-volume fat-tree (n = {n})",
    )

    print("\npermutation traffic (R routes it in t steps measured on R):")
    rows = []
    for net in (Mesh2D(n), Hypercube(n)):
        perm = random_permutation(n, seed=7)
        res = simulate_network_on_fattree(net, perm)
        rows.append(
            {
                "network R": net.name,
                "t on R": res.t,
                "FT cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "bound": res.bound(),
                "within": res.slowdown <= res.bound(),
            }
        )
    print_table(rows)
    print(
        "\nThe mesh is slow at permutations (t ≈ √n), so the fat-tree of the"
        "\nsame (small!) volume simulates it with slowdown far below the bound."
        "\nThe hypercube is fast — and pays for it with Θ(n^{3/2}) volume,"
        "\nwhich buys the fat-tree a proportionally fatter root."
    )


if __name__ == "__main__":
    main()
