#!/usr/bin/env python
"""Whole-application scheduling: an FFT and a sparse solver on fat-trees.

§VII: a supercomputer "should have the powers to efficiently execute
many different parallel algorithms".  This example schedules complete
application traces — every communication round of an FFT, a bitonic
sort, a stencil sweep and a sparse mat-vec — on fat-trees of different
root capacities, reporting whole-application delivery cycles.

The FFT's butterfly rounds are global (they saturate the root one bit at
a time), while the stencil is local: the example shows how the same
machine serves both, and how much root capacity each actually needs.

Run:  python examples/fft_application.py
"""

import math

from repro.analysis import print_table
from repro.core import FatTree, UniversalCapacity
from repro.workloads import (
    bitonic_sort_trace,
    fft_trace,
    schedule_trace,
    sparse_matvec_trace,
    stencil_trace,
)


def main() -> None:
    n = 256
    traces = [
        fft_trace(n),
        bitonic_sort_trace(n),
        stencil_trace(n, iterations=8),
        sparse_matvec_trace(n, iterations=8, seed=0),
    ]
    capacities = [n, n // 4, math.ceil(n ** (2 / 3))]

    rows = []
    for trace in traces:
        row = {
            "application": trace.name,
            "rounds": len(trace),
            "messages": trace.total_messages(),
        }
        for w in capacities:
            ft = FatTree(n, UniversalCapacity(n, w))
            _, total = schedule_trace(ft, trace)
            row[f"cycles @ w={w}"] = total
        rows.append(row)
    print_table(
        rows,
        title=f"whole-application delivery cycles on n = {n} fat-trees",
    )

    print(
        "\nGlobal algorithms (FFT, sort) feel the root capacity directly;"
        "\nlocal ones (stencil) barely notice it.  One machine, one scheduler,"
        "\nmany algorithms — the §VII universality argument at the application"
        "\nlevel."
    )


if __name__ == "__main__":
    main()
