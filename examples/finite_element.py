#!/usr/bin/env python
"""The paper's motivating application (§I): planar finite-element analysis.

"Many finite-element problems are planar, and planar graphs have a
bisection width of size O(√n) … a natural implementation of a parallel
finite-element algorithm would waste much of the communication bandwidth
provided by a hypercube-based routing network."

This example runs the neighbour-exchange round of a planar FEM mesh on
fat-trees of decreasing root capacity and on an (abstract) hypercube, and
prints the hardware each needs.  The punchline: a fat-tree sized to the
workload's O(√n) bisection delivers the same iteration time with a small
fraction of the hypercube's volume — without becoming a special-purpose
machine.

Run:  python examples/finite_element.py
"""

import math

from repro.analysis import print_table
from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.vlsi import total_components, volume_bound
from repro.workloads import (
    fem_message_set,
    grid_fem_edges,
    planar_bisection_bound,
)


def main() -> None:
    n = 1024
    edges = grid_fem_edges(n)
    messages = fem_message_set(edges, n, placement="hilbert")
    print(
        f"planar FEM mesh: {n} vertices, {len(edges)} edges, "
        f"{len(messages)} messages per solver iteration"
    )
    print(
        "Lipton-Tarjan bisection bound for planar graphs: "
        f"O(√n) = {planar_bisection_bound(n):.0f} edges\n"
    )

    rows = []
    for w in (n, n // 2, n // 4, n // 8, round(n ** (2 / 3))):
        ft = FatTree(n, UniversalCapacity(n, w))
        lam = load_factor(ft, messages)
        sched = schedule_theorem1(ft, messages)
        sched.validate(ft, messages)
        rows.append(
            {
                "network": f"fat-tree w={w}",
                "root cap": w,
                "volume": volume_bound(n, w, 1.0),
                "components": total_components(ft),
                "λ(M)": lam,
                "cycles": sched.num_cycles,
            }
        )

    # the hypercube comparison: it routes the round in O(1) steps but
    # costs Θ(n^{3/2}) volume (§I wirability argument)
    rows.append(
        {
            "network": "hypercube (§I)",
            "root cap": n // 2,
            "volume": float(n) ** 1.5,
            "components": n * int(math.log2(n)),
            "λ(M)": "-",
            "cycles": 1,
        }
    )

    print_table(
        rows,
        ["network", "root cap", "volume", "components", "λ(M)", "cycles"],
        title="hardware needed to sustain one FEM iteration",
    )

    skinny = rows[-2]
    cube = rows[-1]
    print(
        f"\nfat-tree with w = n^(2/3) uses {cube['volume'] / skinny['volume']:.1f}x "
        "less volume than the hypercube"
    )
    print(
        f"while delivering the iteration in {skinny['cycles']} delivery "
        "cycles — communication scaled to the workload, not the worst case."
    )


if __name__ == "__main__":
    main()
