#!/usr/bin/env python
"""Fault tolerance: route around dead wires, retry through flaky ones.

§VII of the paper lists fault tolerance among the open problems of
hardware-efficient supercomputing.  The architecture already contains
most of the answer: capacities are per channel, so a fat-tree that has
lost wires is just a slightly thinner fat-tree, and every scheduler
routes against the surviving hardware unchanged.  This example

1. builds a universal fat-tree and a random workload;
2. kills 10% of the wires of every channel (``FaultModel`` +
   ``DegradedFatTree``) and compares λ(M) and the Theorem 1 delivery
   count before and after;
3. adds transient corruption (each traversal flips a coin) and runs the
   retry/backoff delivery loop until everything lands, printing the
   per-message attempt histogram.

Run:  python examples/fault_tolerance.py
"""

from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.faults import DegradedFatTree, FaultModel
from repro.hardware import run_until_delivered
from repro.workloads import butterfly_exchange


def main() -> None:
    n, w = 256, 64
    ft = FatTree(n, UniversalCapacity(n, w, strict=False))
    # global traffic — every message crosses the root, so the wide upper
    # channels (the ones fractional kills actually thin) are the bottleneck
    messages = butterfly_exchange(n, n.bit_length() - 2)
    print(f"fat-tree: {ft}")
    print(f"workload: {len(messages)} butterfly-exchange messages "
          "(all cross the root)")

    # --- kill 10% of every channel's wires -------------------------------
    model = FaultModel(seed=7).kill_wire_fraction(ft, 0.10)
    degraded = DegradedFatTree(ft, model)
    print(f"\nkilled 10% of wires per channel: "
          f"{degraded.total_wires()}/{ft.total_wires()} wires survive "
          f"({degraded.surviving_fraction():.1%})")

    lam0 = load_factor(ft, messages)
    lam1 = load_factor(degraded, messages)
    d0 = schedule_theorem1(ft, messages).num_cycles
    d1 = schedule_theorem1(degraded, messages).num_cycles
    print(f"\nload factor λ(M):  pristine {lam0:.2f}  ->  degraded {lam1:.2f}")
    print(f"Theorem 1 cycles:  pristine {d0}  ->  degraded {d1}")
    print("the degraded tree is just a thinner fat-tree — same routing,")
    print("proportionally fewer wires, so delivery degrades gracefully.")

    # --- transient faults: retry with capped exponential backoff ---------
    loss = 0.05
    flaky = DegradedFatTree(
        ft, FaultModel(seed=7, loss_rate=loss).kill_wire_fraction(ft, 0.10)
    )
    out = run_until_delivered(flaky, messages, seed=1)
    print(f"\nwith {loss:.0%} per-traversal corruption, retry/backoff "
          f"delivers everything in {out.cycles} delivery cycles")
    print("retry histogram (attempts -> messages):")
    for attempts, count in sorted(out.attempt_histogram().items()):
        print(f"  {attempts:3d}  {'#' * max(1, count // 20)} {count}")


if __name__ == "__main__":
    main()
