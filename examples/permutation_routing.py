#!/usr/bin/env python
"""§VI: fat-trees versus classical permutation networks.

"A universal fat-tree on n processors with Θ(n^{3/2}) volume can route an
arbitrary permutation off-line in time O(lg n).  Up to constant factors,
this is the best possible bound … but it is also achievable, for
instance, by Beneš networks."

This example routes adversarial permutations three ways:

* Theorem 1 off-line scheduling on a full-bandwidth universal fat-tree,
  then executes the schedule on the bit-serial switch simulator;
* the Beneš network's looping algorithm (vertex-disjoint paths);
* the §II online retry loop on the fat-tree (no scheduling at all).

Run:  python examples/permutation_routing.py
"""

import math

from repro.analysis import print_table
from repro.core import FatTree, load_factor, schedule_theorem1
from repro.hardware import run_schedule, run_until_delivered
from repro.networks import Benes
from repro.workloads import bit_reversal, random_permutation, tornado, transpose


def main() -> None:
    n = 64
    ft = FatTree(n)  # w = n: the Θ(n^{3/2})-volume universal fat-tree
    benes = Benes(n)

    workloads = {
        "random": random_permutation(n, seed=0),
        "bit-reversal": bit_reversal(n),
        "transpose": transpose(n),
        "tornado": tornado(n),
    }

    rows = []
    for name, perm in workloads.items():
        lam = load_factor(ft, perm)
        sched = schedule_theorem1(ft, perm)
        sched.validate(ft, perm)
        reports = run_schedule(ft, sched)
        ft_ticks = sum(r.cycle_bit_time() for r in reports)

        # Beneš: vertex-disjoint paths; one circuit-switched pass of
        # 2·lg n port levels
        mapping = [0] * n
        for s, d in perm:
            mapping[s] = d
        benes.verify_permutation_paths(mapping)
        benes_ticks = benes.levels

        online = run_until_delivered(ft, perm, seed=1)
        rows.append(
            {
                "permutation": name,
                "λ(M)": lam,
                "FT cycles": sched.num_cycles,
                "FT ticks": ft_ticks,
                "Beneš ticks": benes_ticks,
                "online cycles": online.cycles,
            }
        )
    print_table(
        rows,
        title=f"permutation routing on n = {n} processors "
        f"(lg n = {int(math.log2(n))})",
    )
    print(
        "\nEvery permutation has λ(M) <= 1 on the full fat-tree, so Theorem 1"
        "\nroutes it in O(lg n) delivery cycles — matching the Beneš network's"
        "\nO(lg n) depth at the same Θ(n^{3/2}) hardware volume, while staying"
        "\na general-purpose (not permutation-only) routing network."
    )


if __name__ == "__main__":
    main()
