"""E22 — extension: delivery-cycle inflation under injected faults.

§VII lists fault tolerance among the open problems of the paper.  This
bench quantifies the natural answer the architecture already contains:
capacities are per channel, so a fat-tree with dead wires is just a
smaller fat-tree, and the off-line/on-line machinery routes against the
surviving hardware unchanged.

Shape assertions:

* killing a fraction f ≤ 1/4 of every channel's wires inflates the
  Theorem 1 delivery count by at most a constant factor that does NOT
  grow with n (n ∈ {64, 256, 1024}) — degradation is graceful;
* transient loss makes the retry/backoff loop slower but it always
  terminates, and a too-small budget raises ``DeliveryTimeout`` rather
  than hanging;
* a dead switch severs exactly its subtree's root-crossing traffic; the
  remaining messages still deliver and the accounting partitions.
"""

import pytest

from repro.core import (
    DeliveryTimeout,
    FatTree,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
)
from repro.faults import DegradedFatTree, FaultModel
from repro.hardware import run_until_delivered
from repro.workloads import butterfly_exchange, uniform_random

FRACTIONS = (0.0, 0.125, 0.25)
SIZES = (64, 256, 1024)


def skinny(n):
    """A tapered tree (w = n/4) whose bottleneck sits in the upper
    levels, where channels are wide enough for fractional kills to
    remove wires (a leaf channel of cap 1 loses floor(f·1) = 0)."""
    return FatTree(n, UniversalCapacity(n, n // 4, strict=False))


def degrade(ft, fraction, seed=0):
    if fraction == 0.0:
        return ft
    model = FaultModel(seed=seed).kill_wire_fraction(ft, fraction)
    return DegradedFatTree(ft, model)


def cycles_at(n, fraction):
    ft = degrade(skinny(n), fraction)
    m = butterfly_exchange(n, n.bit_length() - 2)  # every message crosses the root
    return schedule_theorem1(ft, m).num_cycles


def test_slowdown_constant_in_n(report, benchmark):
    rows = []
    slowdowns = {}
    for n in SIZES:
        base = cycles_at(n, 0.0)
        row = {"n": n, "cycles (pristine)": base}
        for f in FRACTIONS[1:]:
            c = cycles_at(n, f)
            row[f"cycles (f={f})"] = c
            slowdowns[(n, f)] = c / base
            row[f"slowdown (f={f})"] = round(c / base, 3)
        rows.append(row)
    report(rows, title="E22 — Theorem 1 cycles vs fraction of wires killed")
    # graceful degradation: killing ≤ 1/4 of every channel's wires costs
    # at most a constant factor...
    assert all(s <= 2.0 for s in slowdowns.values())
    # ...and that factor does not grow with n (O(1) in n at fixed f)
    for f in FRACTIONS[1:]:
        per_n = [slowdowns[(n, f)] for n in SIZES]
        assert max(per_n) <= 1.5 * min(per_n) + 0.5
    # more faults never help
    for n in SIZES:
        assert cycles_at(n, 0.25) >= cycles_at(n, 0.0)
    benchmark(cycles_at, 256, 0.25)


def test_load_factor_inflation_tracks_surviving_capacity(report):
    """λ(M) on the degraded tree stays within 1/(1-f) of pristine —
    the inflation a proportional capacity loss predicts."""
    rows = []
    for n in SIZES:
        ft = skinny(n)
        m = uniform_random(n, 4 * n, seed=1)
        lam0 = load_factor(ft, m)
        for f in FRACTIONS[1:]:
            lam = load_factor(degrade(ft, f), m)
            rows.append(
                {
                    "n": n,
                    "f": f,
                    "λ pristine": round(lam0, 3),
                    "λ degraded": round(lam, 3),
                    "bound λ/(1-f)": round(lam0 / (1 - f), 3),
                }
            )
            assert lam0 <= lam <= lam0 / (1 - f) + 1e-9
    report(rows, title="E22 — λ(M) inflation under wire kills")


def test_transient_loss_terminates(report, benchmark):
    """Retry + capped exponential backoff always converges under
    Bernoulli corruption, at a cost geometric in the loss rate."""
    n = 64
    ft = skinny(n)
    m = uniform_random(n, 2 * n, seed=2)
    rows = []
    prev = 0
    for loss in (0.0, 0.1, 0.3):
        model = FaultModel(seed=3, loss_rate=loss).kill_wire_fraction(ft, 0.125)
        dft = DegradedFatTree(ft, model)
        out = run_until_delivered(dft, m, seed=4, max_cycles=20_000)
        rows.append(
            {
                "loss rate": loss,
                "delivery cycles": out.cycles,
                "max attempts": out.max_attempts(),
            }
        )
        assert out.cycles >= prev
        prev = out.cycles
    report(rows, title="E22 — retry cost under transient loss (n = 64)")
    benchmark(
        run_until_delivered,
        DegradedFatTree(ft, FaultModel(seed=3, loss_rate=0.1)),
        m,
        seed=4,
    )


def test_timeout_raises_instead_of_hanging():
    n = 64
    ft = skinny(n)
    model = FaultModel(seed=5, loss_rate=0.4)
    dft = DegradedFatTree(ft, model)
    m = uniform_random(n, 2 * n, seed=6)
    with pytest.raises(DeliveryTimeout) as exc:
        run_until_delivered(dft, m, seed=7, max_cycles=2)
    assert exc.value.cycles == 2
    assert len(exc.value.undelivered) > 0


def test_dead_switch_degrades_gracefully(report):
    n = 256
    ft = FatTree(n)
    model = FaultModel(seed=8).kill_switch(2, 1)
    dft = DegradedFatTree(ft, model)
    m = uniform_random(n, 4 * n, seed=9)
    live = m.without_self_messages()
    mask = dft.routable_mask(live)
    survivors = live.take(mask)
    out = run_until_delivered(dft, survivors, seed=10)
    delivered = sum(len(r.delivered) for r in out.reports)
    report(
        [
            {
                "messages": len(live),
                "unroutable": int((~mask).sum()),
                "delivered": delivered,
                "cycles": out.cycles,
            }
        ],
        title="E22 — dead switch (level 2, index 1) on n = 256",
    )
    assert delivered == len(survivors)
    assert delivered + int((~mask).sum()) == len(live)
    assert 0 < int((~mask).sum()) < len(live)
