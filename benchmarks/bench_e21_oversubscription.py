"""E21 — extension: oversubscription, the modern form of §IV's knob.

Fabric designers quote fat-trees by their oversubscription ratio R (the
top of the tree carries 1/R of full bisection).  This bench sweeps R for
global and local traffic: global traffic pays for R nearly linearly in
delivery cycles, local traffic not at all — Leiserson's "communication
can be scaled independently from number of processors", stated in the
vocabulary the datacenter inherited from the paper.
"""

import math

import pytest

from repro.core import FatTree, TaperedCapacity, load_factor, schedule_theorem1
from repro.workloads import butterfly_exchange, fem_message_set, grid_fem_edges


def run(n, ratio, traffic):
    ft = FatTree(n, TaperedCapacity(n, ratio))
    lam = load_factor(ft, traffic)
    d = schedule_theorem1(ft, traffic).num_cycles
    return lam, d


def test_oversubscription_sweep(report, benchmark):
    n = 1024
    global_traffic = butterfly_exchange(n, 9)  # all messages cross the root
    local_traffic = fem_message_set(
        grid_fem_edges(n), n, placement="hilbert"
    )
    rows = []
    for ratio in (1.0, 2.0, 4.0, 8.0):
        lam_g, d_g = run(n, ratio, global_traffic)
        lam_l, d_l = run(n, ratio, local_traffic)
        rows.append(
            {
                "oversubscription R": ratio,
                "λ (global)": lam_g,
                "cycles (global)": d_g,
                "λ (local FEM)": lam_l,
                "cycles (local FEM)": d_l,
            }
        )
    report(rows, title=f"E21 — oversubscribed fat-trees (n = {n})")
    global_cycles = [r["cycles (global)"] for r in rows]
    local_cycles = [r["cycles (local FEM)"] for r in rows]
    # global traffic pays for oversubscription...
    assert global_cycles[-1] >= 4 * global_cycles[0]
    # ...within ~linear of the ratio (scheduling slack aside)
    assert global_cycles[-1] <= 4 * 8 * global_cycles[0]
    # local traffic does not care
    assert local_cycles[-1] <= 2 * local_cycles[0]
    benchmark(run, 256, 4.0, butterfly_exchange(256, 7))


def test_oversubscription_saves_wires(report, benchmark):
    """What R buys: the wire-count savings across the sweep."""
    n = 1024
    rows = []
    base = None
    for ratio in (1.0, 2.0, 4.0, 8.0):
        ft = FatTree(n, TaperedCapacity(n, ratio))
        wires = ft.total_wires()
        if base is None:
            base = wires
        rows.append(
            {
                "R": ratio,
                "total wires": wires,
                "vs full bisection": wires / base,
                "root cap": ft.cap(0),
            }
        )
    report(rows, title="E21 — hardware saved by tapering")
    savings = [r["vs full bisection"] for r in rows]
    assert savings == sorted(savings, reverse=True)
    assert savings[-1] < 0.75
    benchmark(lambda: FatTree(n, TaperedCapacity(n, 4.0)).total_wires())
