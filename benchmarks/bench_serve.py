"""SERVE — sustained scheduling throughput and tail latency on one box.

Drives the :mod:`repro.serve` engine (PR 8) as a closed-loop client:
pre-generated uniform-random route requests are pushed through
``ServeEngine.submit`` with a bounded in-flight window, so the batcher
coalesces compatible requests into ``batch_schedule`` dispatches across
a real process shard pool.  Recorded into ``BENCH_SERVE.json`` at the
repository root:

- **requests/min sustained** — completed requests over the steady-state
  wall clock (a warmup slice is excluded so pool spin-up does not count
  against the sustained figure).
- **p50 / p99 latency** — per-request submit→response time, which
  includes admission, batching delay (the coalescing window), pickling
  to the shard, scheduling, and the response trip back.

Acceptance gate: ≥10,000 schedule requests/min sustained at ``n = 256``
(64-message sets, greedy kernel, 2 shards).  ``--quick`` runs a smaller
CI smoke at ``n = 64`` with a modest gate — the point there is that the
pipeline works end to end, not the headline number.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_serve.py``
(``--quick`` for CI) or via pytest as a bench.
"""

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_SERVE.json"

# gate: requests/min the engine must sustain on one box (full mode)
GATE_REQ_PER_MIN = 10_000.0
# quick-mode smoke gate: generous, CI machines vary wildly
QUICK_GATE_REQ_PER_MIN = 2_000.0


def _percentile(sorted_vals, q):
    """Nearest-rank percentile of an ascending list (q in [0, 100])."""
    if not sorted_vals:
        return 0.0
    rank = max(0, min(len(sorted_vals) - 1, int(q / 100.0 * len(sorted_vals))))
    return sorted_vals[rank]


def _serve_case(n, *, shards, requests, messages, warmup, max_batch,
                window_s, kernel="greedy", seed=0):
    """Run one closed-loop load point; return its results row."""
    from repro.serve import RouteRequest, ServeConfig, ServeEngine
    from repro.workloads import uniform_random

    cfg = ServeConfig(
        n=n,
        shards=shards,
        lambda_ceiling=1e9,  # throughput point: admission never refuses
        max_pending=requests + warmup + 1,
        max_batch=max_batch,
        batch_window_s=window_s,
    )
    engine = ServeEngine(cfg)
    # pre-generate every request outside the timed region: the bench
    # measures the serving stack, not the workload generator
    reqs = []
    for i in range(warmup + requests):
        ms = uniform_random(n, messages, seed=seed + i)
        reqs.append(
            RouteRequest(
                id=f"q{i}",
                src=tuple(int(x) for x in ms.src),
                dst=tuple(int(x) for x in ms.dst),
                kernel=kernel,
                seed=seed,
            )
        )

    latencies = []  # steady-state only, seconds

    async def drive():
        # closed loop: up to 2×max_batch requests in flight keeps the
        # coalescing window saturated without unbounded queueing
        gate = asyncio.Semaphore(2 * max_batch)

        async def one(i, req):
            async with gate:
                t0 = time.perf_counter()
                resp = await engine.submit(req)
                if i >= warmup:
                    latencies.append(time.perf_counter() - t0)
                if not resp["ok"]:
                    raise RuntimeError(f"bench request refused: {resp}")

        # warmup slice first (pool spin-up, first pickles), then time
        # the steady-state slice on its own wall clock
        await asyncio.gather(*(one(i, r) for i, r in enumerate(reqs[:warmup])))
        t0 = time.perf_counter()
        await asyncio.gather(
            *(one(warmup + i, r) for i, r in enumerate(reqs[warmup:]))
        )
        return time.perf_counter() - t0

    try:
        wall_s = asyncio.run(drive())
        dispatches = sum(
            value
            for kind, name, _, value in engine.metrics.series()
            if kind == "counter" and name == "serve.dispatches"
        )
    finally:
        engine.close()

    latencies.sort()
    return {
        "n": n,
        "shards": shards,
        "requests": requests,
        "messages_per_request": messages,
        "kernel": kernel,
        "wall_s": round(wall_s, 3),
        "req_per_min": round(requests / wall_s * 60.0, 1),
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
        "dispatches": int(dispatches),
        "mean_batch": round(requests / dispatches, 2) if dispatches else 0.0,
    }


def run_bench(quick=False):
    """All load points; the first row is the acceptance gate."""
    if quick:
        cases = [
            dict(n=64, shards=2, requests=120, messages=32, warmup=24,
                 max_batch=16, window_s=0.004),
        ]
    else:
        cases = [
            # the headline point: n=256, 64-message sets, 2 shards
            dict(n=256, shards=2, requests=600, messages=64, warmup=60,
                 max_batch=32, window_s=0.004),
            # inline (no pool) isolates the pickling/IPC cost
            dict(n=256, shards=0, requests=300, messages=64, warmup=30,
                 max_batch=32, window_s=0.004),
            # random-rank kernel at the same point
            dict(n=256, shards=2, requests=300, messages=64, warmup=30,
                 max_batch=32, window_s=0.004, kernel="random_rank"),
        ]
    rows = [_serve_case(**case) for case in cases]
    RESULTS_PATH.write_text(
        json.dumps({"quick": quick, "serve": rows}, indent=2) + "\n"
    )
    return rows


def test_serve_throughput_gate(report):
    """The serve acceptance gate: ≥10,000 schedule requests/min
    sustained at n=256 (64-message sets) with p99 latency recorded."""
    rows = run_bench(quick=False)
    report(rows, title="SERVE — sustained throughput and tail latency")
    headline = rows[0]
    assert headline["n"] == 256 and headline["messages_per_request"] == 64
    assert headline["p99_ms"] > 0.0  # tail latency really was recorded
    assert headline["req_per_min"] >= GATE_REQ_PER_MIN, (
        f"acceptance: expected >={GATE_REQ_PER_MIN:.0f} req/min at n=256, "
        f"measured {headline['req_per_min']}"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small n, fewer requests (CI smoke) with a modest gate",
    )
    args = parser.parse_args(argv)
    rows = run_bench(quick=args.quick)
    from repro.analysis import format_table

    print(format_table(rows, title="SERVE — sustained throughput and tail latency"))
    print(f"wrote {RESULTS_PATH}")
    gate = QUICK_GATE_REQ_PER_MIN if args.quick else GATE_REQ_PER_MIN
    headline = rows[0]
    if headline["req_per_min"] < gate:
        print(f"FAIL: {headline['req_per_min']} req/min < {gate:.0f}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
