"""E19 — extension: how far from optimal are the paper's schedulers?

The paper sandwiches the optimum between λ(M) and O(λ·lg n) and leaves
the gap open.  On instances small enough for exact branch-and-bound,
this bench measures where the optimum actually sits and how much of the
Theorem 1 gap is real versus algorithmic slack.
"""

import math

import numpy as np
import pytest

from repro.core import (
    FatTree,
    UniversalCapacity,
    exact_minimum_cycles,
    load_factor,
    schedule_greedy_first_fit,
    schedule_theorem1,
)
from repro.workloads import uniform_random


def measure(seed, n=16, m_count=24):
    ft = FatTree(n, UniversalCapacity(n, 8, strict=False))
    m = uniform_random(n, m_count, seed=seed)
    lam = load_factor(ft, m)
    opt = exact_minimum_cycles(ft, m, max_cycles=16)
    d1 = schedule_theorem1(ft, m).num_cycles
    dg = schedule_greedy_first_fit(ft, m).num_cycles
    return lam, opt, d1, dg


def test_optimality_gap(report, benchmark):
    rows = []
    gaps_opt = []
    gaps_thm1 = []
    for seed in range(12):
        lam, opt, d1, dg = measure(seed)
        rows.append(
            {
                "seed": seed,
                "⌈λ⌉": math.ceil(lam),
                "OPT": opt,
                "Thm 1": d1,
                "greedy": dg,
                "OPT/⌈λ⌉": opt / max(1, math.ceil(lam)),
                "Thm1/OPT": d1 / max(1, opt),
            }
        )
        assert math.ceil(lam) <= opt <= d1
        gaps_opt.append(opt / max(1, math.ceil(lam)))
        gaps_thm1.append(d1 / max(1, opt))
    report(rows, title="E19 — exact optimum vs the paper's bounds (n = 16)")
    # empirically the λ lower bound is very close to achievable...
    assert float(np.mean(gaps_opt)) <= 1.4
    # ...so most of the Theorem 1 gap is algorithmic (the lg n levels)
    assert max(gaps_thm1) <= 2 * math.log2(16)
    benchmark(measure, 0)


def test_lambda_achievability_rate(report, benchmark):
    """On what fraction of random instances is ceil(λ) exactly optimal?"""
    hits = 0
    trials = 20
    for seed in range(trials):
        lam, opt, _, _ = measure(seed + 100, m_count=18)
        hits += opt == max(1, math.ceil(lam))
    report(
        [{"trials": trials, "OPT == ⌈λ⌉": hits, "rate": hits / trials}],
        title="E19 — achievability of the load-factor lower bound",
    )
    assert hits / trials >= 0.5
    benchmark(measure, 101, 16, 18)
