"""E6 — Lemma 6 / Theorem 8 / Corollary 9 (Fig. 4): balanced
decomposition trees.

Measured claims: every balanced node splits its processors ±1 and owns at
most two leaf runs (Lemma 6 structure); the balanced bandwidths respect
w'_j <= 4·Σ_{i>=j} w_i (Theorem 8); for the geometric (w, ∛4) trees of
Theorem 5 the root blow-up stays under 4a/(a−1) (Corollary 9).
"""

import numpy as np
import pytest

from repro.networks import Hypercube, Layout, Mesh2D
from repro.vlsi import (
    balance_decomposition,
    corollary9_factor,
    cutting_plane_tree,
    theorem8_bound,
)

A = 4.0 ** (1.0 / 3.0)


def random_layout(n, seed=0):
    rng = np.random.default_rng(seed)
    side = float(max(4, round(n ** (1 / 3)) * 2))
    return Layout(rng.uniform(0, side, (n, 3)), (side, side, side))


def balance(layout):
    tree = cutting_plane_tree(layout)
    return tree, balance_decomposition(tree)


@pytest.mark.parametrize(
    "make",
    [
        ("mesh2d", lambda n: Mesh2D(n).layout()),
        ("hypercube", lambda n: Hypercube(n).layout()),
        ("random-cloud", random_layout),
    ],
    ids=lambda m: m[0],
)
def test_balance_invariants_and_bounds(make, report, benchmark):
    name, factory = make
    rows = []
    for n in (64, 256):
        tree, bal = balance(factory(n))
        bal.validate_balance()
        blowups = []
        for j in range(len(bal.level_bandwidths)):
            bound = theorem8_bound(tree.level_bandwidths, min(j, tree.depth))
            measured = bal.level_bandwidths[j]
            assert measured <= bound + 1e-6, (j, measured, bound)
            if tree.level_bandwidths[min(j, tree.depth)] > 0:
                blowups.append(
                    measured / tree.level_bandwidths[min(j, tree.depth)]
                )
        rows.append(
            {
                "n": n,
                "unbal depth r": tree.depth,
                "bal depth": bal.depth,
                "w0 (unbal)": tree.level_bandwidths[0],
                "w0' (bal)": bal.level_bandwidths[0],
                "root blow-up": bal.level_bandwidths[0] / tree.level_bandwidths[0],
                "Cor 9 limit 4a/(a-1)": corollary9_factor(A),
            }
        )
        assert (
            bal.level_bandwidths[0] / tree.level_bandwidths[0]
            <= corollary9_factor(A) * 1.01
        )
        assert bal.depth <= int(np.ceil(np.log2(n))) + 1
    report(rows, title=f"E6 / Thm 8, Cor 9 — balancing the {name} tree")
    benchmark(balance, factory(64))


def test_pearl_split_throughput(benchmark):
    from repro.vlsi import split_two_strings

    rng = np.random.default_rng(0)
    L = rng.integers(0, 2, 2048)
    S = rng.integers(0, 2, 1024)
    benchmark(split_two_strings, L, S)
