"""E13 — ablation: the even-split scheduler vs naive baselines.

Not from the paper: compares Theorem 1 / Corollary 2 against first-fit
bin packing and the §II online random-retry loop, isolating what the
matching+tracing partitioner buys.  Asserted shape: the paper's
schedulers always meet their bounds, and the online loop never beats the
off-line λ lower bound.
"""

import math

import pytest

from repro.core import (
    FatTree,
    ScaledCapacity,
    UniversalCapacity,
    load_factor,
    schedule_corollary2,
    schedule_greedy_first_fit,
    schedule_theorem1,
    simulate_online_retry,
    theorem1_cycle_bound,
)
from repro.workloads import (
    bisection_stress,
    hotspot,
    local_traffic,
    uniform_random,
)


def make_workload(name, n):
    if name == "uniform":
        return uniform_random(n, 6 * n, seed=1)
    if name == "hotspot":
        return hotspot(n, 2 * n, fraction=0.25, seed=2)
    if name == "local":
        return local_traffic(n, 6 * n, decay=0.4, seed=3)
    return bisection_stress(n, m_per_proc=2, seed=4)


@pytest.mark.parametrize(
    "workload", ["uniform", "hotspot", "local", "bisection"]
)
def test_scheduler_comparison(workload, report, benchmark):
    n = 128
    base = UniversalCapacity(n, n)
    ft = FatTree(n, ScaledCapacity(base, lambda c: 2 * c * base.depth))
    m = make_workload(workload, n)
    lam = load_factor(ft, m)

    d_thm1 = schedule_theorem1(ft, m).num_cycles
    d_cor2 = schedule_corollary2(ft, m).num_cycles
    d_greedy = schedule_greedy_first_fit(ft, m).num_cycles
    d_online = simulate_online_retry(ft, m, seed=0).num_cycles

    rows = [
        {
            "scheduler": name,
            "cycles": d,
            "vs ⌈λ⌉": d / max(1, math.ceil(lam)),
        }
        for name, d in [
            ("Theorem 1", d_thm1),
            ("Corollary 2", d_cor2),
            ("greedy first-fit", d_greedy),
            ("online retry", d_online),
        ]
    ]
    report(
        rows,
        title=f"E13 — schedulers on {workload} traffic "
        f"(n = {n}, λ = {lam:.2f})",
    )
    floor = max(1, math.ceil(lam))
    assert d_thm1 <= theorem1_cycle_bound(ft, lam)
    assert all(d >= floor for d in (d_thm1, d_cor2, d_greedy, d_online))
    # the paper's wide-channel scheduler stays within a small constant of
    # the lower bound on every workload
    assert d_cor2 <= 4 * floor + 2
    benchmark(schedule_corollary2, ft, m)
