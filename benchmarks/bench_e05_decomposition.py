"""E5 — Theorem 5: cutting-plane decomposition trees of real layouts.

For actual 3-D layouts (meshes, hypercubes, random clouds), the measured
decomposition tree must have root bandwidth O(v^{2/3}) and per-level
bandwidth decay converging to ∛4 (a factor of 4 every three levels).
"""

import numpy as np
import pytest

from repro.analysis import fit_loglog
from repro.networks import Hypercube, Layout, Mesh2D, Mesh3D
from repro.vlsi import cutting_plane_tree, theorem5_bandwidth


def random_layout(n, seed=0):
    rng = np.random.default_rng(seed)
    side = float(max(4, round(n ** (1 / 3)) * 2))
    return Layout(rng.uniform(0, side, (n, 3)), (side, side, side))


def build_tree(layout):
    return cutting_plane_tree(layout)


@pytest.mark.parametrize(
    "make",
    [
        ("mesh2d", lambda n: Mesh2D(n).layout()),
        ("mesh3d", lambda n: Mesh3D(n).layout()),
        ("hypercube", lambda n: Hypercube(n).layout()),
        ("random-cloud", random_layout),
    ],
    ids=lambda m: m[0],
)
def test_decomposition_shape(make, report, benchmark):
    name, factory = make
    sizes = {"mesh3d": [64, 512], "mesh2d": [64, 256, 1024]}.get(
        name, [64, 256, 1024]
    )
    rows = []
    for n in sizes:
        lay = factory(n)
        tree = build_tree(lay)
        tree.validate()
        w = tree.level_bandwidths
        decay3 = [w[i] / w[i + 3] for i in range(min(4, len(w) - 3))]
        rows.append(
            {
                "n": n,
                "volume v": lay.volume,
                "depth r": tree.depth,
                "w_0 (root bw)": w[0],
                "O(v^2/3)": theorem5_bandwidth(lay.volume, 0),
                "decay per 3 lvls": np.mean(decay3) if decay3 else float("nan"),
            }
        )
        # the v^{2/3} closed form assumes a cubic region; flat layouts
        # (the 2-D mesh) have larger surface per volume, so compare the
        # root bandwidth against its own box there
        bx, by, bz = lay.box
        if max(lay.box) <= 2 * min(lay.box):
            assert w[0] <= theorem5_bandwidth(lay.volume, 0) * 1.01
        else:
            assert w[0] == pytest.approx(2 * (bx * by + by * bz + bz * bx))
        # every three cuts halve all sides: bandwidth drops by exactly 4
        for d3 in decay3:
            assert d3 == pytest.approx(4.0, rel=0.05)
    report(rows, title=f"E5 / Theorem 5 — cutting-plane tree of {name}")
    benchmark(build_tree, factory(sizes[0]))


def test_root_bandwidth_exponent(report, benchmark):
    """Across a 512x volume sweep, w_0 must fit v^{2/3}."""
    vols, bws = [], []
    for n in (64, 256, 1024, 4096):
        lay = random_layout(n, seed=n)
        tree = cutting_plane_tree(lay)
        vols.append(lay.volume)
        bws.append(tree.level_bandwidths[0])
    fit = fit_loglog(vols, bws)
    report(
        [{"fit w0 ~ v^s, s": fit.slope, "r²": fit.r_squared}],
        title="E5 — root bandwidth exponent (expect 2/3)",
    )
    assert 0.6 <= fit.slope <= 0.73
    benchmark(build_tree, random_layout(256, seed=1))
