"""E4 — Theorem 4: hardware cost of universal fat-trees.

Measured component counts must scale as O(n·lg(w³/n²)) and the
constructive volume as O((w·lg(n/w))^{3/2}); we also exercise the inverse
map volume → root capacity.  Log-log fits recover the exponents.
"""

import math

import pytest

from repro.analysis import fit_loglog
from repro.core import FatTree, UniversalCapacity
from repro.vlsi import (
    component_bound,
    constructive_volume,
    root_capacity_for_volume,
    total_components,
    volume_bound,
)


def measure(n, w):
    ft = FatTree(n, UniversalCapacity(n, w))
    return {
        "components": total_components(ft),
        "volume": constructive_volume(n, w),
    }


def test_component_scaling(report, benchmark):
    rows = []
    sizes = [2 ** k for k in range(6, 15, 2)]
    for n in sizes:
        for kind, w in (("w=n^2/3", math.ceil(n ** (2 / 3))), ("w=n", n)):
            m = measure(n, w)
            bound = component_bound(n, w)
            rows.append(
                {
                    "n": n,
                    "profile": kind,
                    "components": m["components"],
                    "O(n·lg(w³/n²))": bound,
                    "ratio": m["components"] / bound,
                }
            )
            assert m["components"] <= bound
    report(rows, title="E4 / Theorem 4 — component counts")
    # at fixed w = n, components / n grows like lg n: fit comp vs n·lg n
    xs = [n * math.log2(n) for n in sizes]
    ys = [r["components"] for r in rows if r["profile"] == "w=n"]
    fit = fit_loglog(xs, ys)
    assert 0.85 <= fit.slope <= 1.15, f"components not ~ n·lg n: {fit.slope}"
    benchmark(measure, 1024, 1024)


def test_volume_scaling(report, benchmark):
    rows = []
    sizes = [2 ** k for k in range(8, 15, 2)]
    ratios = []
    for n in sizes:
        w = math.ceil(n ** (5 / 6))
        v = constructive_volume(n, w)
        bound = volume_bound(n, w, 1.0)
        rows.append(
            {"n": n, "w=n^5/6": w, "constructive v": v,
             "(w·lg(n/w))^1.5": bound, "ratio": v / bound}
        )
        ratios.append(v / bound)
    report(rows, title="E4 / Theorem 4 — constructive volume vs closed form")
    # same shape: the ratio stays within a constant band across 64x in n
    assert max(ratios) / min(ratios) < 6.0
    # exponent check: v ~ (w·lg(n/w))^{3/2}
    xs = [r["w=n^5/6"] * max(1, math.log2(n / r["w=n^5/6"])) for n, r in zip(sizes, rows)]
    fit = fit_loglog(xs, [r["constructive v"] for r in rows])
    assert 1.3 <= fit.slope <= 1.7, f"volume exponent {fit.slope} not ~ 3/2"
    benchmark(constructive_volume, 1024, 256)


def test_inverse_map(report, benchmark):
    n = 4096
    rows = []
    for v in sorted((n * 12.0, n ** 1.25, n ** 1.4, n ** 1.5)):
        w = root_capacity_for_volume(n, v)
        rows.append(
            {"volume budget": v, "root capacity w": w,
             "v^(2/3)": v ** (2 / 3),
             "w·lg(n/w)": w * max(1, math.log2(n / w))}
        )
    report(rows, title="E4 — volume → root capacity (§IV definition)")
    ws = [r["root capacity w"] for r in rows]
    assert ws == sorted(ws)  # monotone in budget
    # w·lg(n/w) tracks v^{2/3} within a constant
    for r in rows:
        assert 0.2 <= r["w·lg(n/w)"] / r["v^(2/3)"] <= 5.0
    benchmark(root_capacity_for_volume, 4096, 4096 ** 1.4)


def test_cost_model_speed(benchmark):
    benchmark(measure, 4096, 1024)
