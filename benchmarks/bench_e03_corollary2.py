"""E3 — Corollary 2: near-optimal scheduling when cap(c) >= a·lg n.

On capacity-inflated fat-trees the reuse scheduler must hit
d <= 2·ceil((a/(a−1))·λ(M)) — no lg n factor.  Asserted shapes: the bound
holds for a ∈ {2, 3, 4}, and d/λ stays flat as n grows (the entire point
versus Theorem 1).
"""

import math

import pytest

from repro.core import (
    FatTree,
    ScaledCapacity,
    UniversalCapacity,
    capacity_ratio,
    corollary2_cycle_bound,
    load_factor,
    schedule_corollary2,
    schedule_theorem1,
)
from repro.workloads import uniform_random


def wide_tree(n, a):
    base = UniversalCapacity(n, n)
    depth = base.depth
    return FatTree(n, ScaledCapacity(base, lambda c: c * a * depth))


@pytest.mark.parametrize("a", [2, 3, 4])
def test_corollary2_bound(a, report, benchmark):
    rows = []
    for n in (32, 64, 128, 256):
        ft = wide_tree(n, a)
        m = uniform_random(n, 40 * n, seed=n * a)
        lam = load_factor(ft, m)
        sched = schedule_corollary2(ft, m)
        sched.validate(ft, m)
        bound = corollary2_cycle_bound(ft, lam)
        rows.append(
            {
                "n": n,
                "a (measured)": capacity_ratio(ft),
                "λ(M)": lam,
                "d": sched.num_cycles,
                "bound 2⌈a/(a-1)·λ⌉": bound,
                "d/⌈λ⌉": sched.num_cycles / max(1, math.ceil(lam)),
            }
        )
        assert sched.num_cycles <= bound
        assert sched.num_cycles >= math.ceil(lam)
    report(rows, title=f"E3 / Corollary 2 — capacity factor a = {a}")
    # flat in n: the overhead ratio may not grow with size
    ratios = [r["d/⌈λ⌉"] for r in rows]
    assert max(ratios) <= 2 * min(ratios) + 1
    benchmark(lambda: schedule_corollary2(wide_tree(64, a), uniform_random(64, 40 * 64, seed=a)))


def test_corollary2_beats_theorem1_overhead(report, benchmark):
    """The lg n gap between the two schedulers, measured."""
    rows = []
    for n in (64, 128, 256):
        ft = wide_tree(n, 2)
        m = uniform_random(n, 60 * n, seed=n)
        d2 = schedule_corollary2(ft, m).num_cycles
        d1 = schedule_theorem1(ft, m).num_cycles
        lam = load_factor(ft, m)
        rows.append(
            {"n": n, "λ": lam, "d (Cor 2)": d2, "d (Thm 1)": d1,
             "Thm1/Cor2": d1 / max(1, d2)}
        )
        assert d2 <= d1
    report(rows, title="E3 — reuse scheduler vs level-by-level scheduler")
    benchmark(lambda: schedule_corollary2(wide_tree(64, 2), uniform_random(64, 30 * 64, seed=0)))


def test_corollary2_throughput(benchmark):
    n = 128
    ft = wide_tree(n, 2)
    m = uniform_random(n, 40 * n, seed=1)
    benchmark(schedule_corollary2, ft, m)
