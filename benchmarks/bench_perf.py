"""PERF — old-vs-new wall-clock for the vectorised routing kernels.

Times the vectorised kernels (:func:`repro.core.schedule_random_rank`,
:func:`repro.core.schedule_greedy_first_fit`, riding the shared
:class:`repro.perf.PathIndex`) against the retained pure-Python
``_reference_*`` oracles on identical inputs, asserts the schedules are
identical, and records the measurements into ``BENCH_PERF.json`` at the
repository root.

Acceptance gates: ≥5× on ``schedule_random_rank`` at ``n = 1024`` with
a random permutation (seed 0), ≥5× on ``schedule_greedy_first_fit`` at
``n = 1024`` (full mode); ≥2× on greedy at ``n = 128`` and ≥3× on
:func:`repro.perf.batch_schedule` over the serial per-set loop at
``B = 32, n = 256`` (both modes, so the CI ``--quick`` smoke enforces
them too).  The path-index cache is cleared before every timed call, so
the vectorised numbers are *cold* — cache hits across schedulers only
widen the gap in real use.

Each row also records ``peak_rss_kb``: the process high-water RSS after
the case ran (``ru_maxrss``).  It is a monotone watermark — later rows
can only report equal-or-larger values — so read it as "the bench fit
in this much memory up to and including this case", not as a per-case
footprint.

Run standalone with ``PYTHONPATH=src python benchmarks/bench_perf.py``
(``--quick`` for the CI smoke subset) or via pytest as a bench.
"""

import argparse
import json
import math
import resource
import sys
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_PERF.json"
REPEATS = 3


def _build_case(kind, n, w=None, msgs_per_proc=None, seed=0):
    from repro.core import FatTree, UniversalCapacity
    from repro.workloads import random_permutation, uniform_random

    ft = FatTree(n) if w is None else FatTree(n, UniversalCapacity(n, w, strict=False))
    if msgs_per_proc is None:
        m = random_permutation(n, seed=seed)
        workload = "permutation"
    else:
        m = uniform_random(n, msgs_per_proc * n, seed=seed)
        workload = f"uniform x{msgs_per_proc}"
    return ft, m, workload


def _time(fn, ft, m, *, repeats=REPEATS, **kw):
    from repro.perf import clear_path_index_cache

    best, result = math.inf, None
    for _ in range(repeats):
        clear_path_index_cache(ft)
        t0 = time.perf_counter()
        result = fn(ft, m, **kw)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _run_case(label, kind, n, w=None, msgs_per_proc=None, repeats=REPEATS):
    from repro.core.greedy import (
        _reference_schedule_greedy_first_fit,
        schedule_greedy_first_fit,
    )
    from repro.core.online import (
        _reference_schedule_random_rank,
        schedule_random_rank,
    )

    ft, m, workload = _build_case(kind, n, w, msgs_per_proc)
    if kind == "random_rank":
        new_fn = lambda ft, m: schedule_random_rank(ft, m, seed=0)
        old_fn = lambda ft, m: _reference_schedule_random_rank(ft, m, seed=0)
    else:
        new_fn = schedule_greedy_first_fit
        old_fn = _reference_schedule_greedy_first_fit
    new_s, new_sched = _time(new_fn, ft, m, repeats=repeats)
    old_s, old_sched = _time(old_fn, ft, m, repeats=repeats)
    assert [sorted(c) for c in new_sched.cycles] == [
        sorted(c) for c in old_sched.cycles
    ], f"{label}: vectorised kernel diverged from reference"
    return {
        "case": label,
        "kernel": kind,
        "n": n,
        "workload": workload,
        "cycles": new_sched.num_cycles,
        "reference_s": round(old_s, 6),
        "vectorised_s": round(new_s, 6),
        "speedup": round(old_s / new_s, 2),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _run_batched_case(repeats=REPEATS):
    """Batched 3-D scheduling (one :func:`repro.perf.batch_schedule`
    call over B compatible message sets) against the serial per-set
    loop it is held bit-identical to.

    Workload: B=32 independent uniform-random sets of 16 messages each
    (seeds 0..31) on one n=256 tree, ``kernel="random_rank"`` — small
    sets, so the serial loop's per-call overhead dominates exactly the
    way a Monte-Carlo sweep's inner loop does.  ``messages_per_s``
    counts every input message over the batched wall clock.
    """
    from repro.core import FatTree
    from repro.perf import clear_path_index_cache
    from repro.perf.batch import _reference_batch_schedule, batch_schedule
    from repro.workloads import uniform_random

    n, b, m_per_set = 256, 32, 16
    ft = FatTree(n)
    sets = [uniform_random(n, m_per_set, seed=s) for s in range(b)]
    best_new = best_old = math.inf
    new_scheds = old_scheds = None
    for _ in range(repeats):
        clear_path_index_cache(ft)
        t0 = time.perf_counter()
        new_scheds = batch_schedule(ft, sets, kernel="random_rank", seed=0)
        best_new = min(best_new, time.perf_counter() - t0)
        clear_path_index_cache(ft)
        t0 = time.perf_counter()
        old_scheds = _reference_batch_schedule(ft, sets, kernel="random_rank", seed=0)
        best_old = min(best_old, time.perf_counter() - t0)
    assert all(
        a.cycles == o.cycles for a, o in zip(new_scheds, old_scheds)
    ), "batched: batch_schedule diverged from the serial per-set loop"
    total_m = sum(len(s) for s in sets)
    return {
        "case": f"batched random_rank B={b} n={n}",
        "kernel": "batched random_rank",
        "n": n,
        "workload": f"uniform m/set={m_per_set} B={b}",
        "cycles": max(s.num_cycles for s in new_scheds),
        "reference_s": round(best_old, 6),
        "vectorised_s": round(best_new, 6),
        "speedup": round(best_old / best_new, 2),
        "messages_per_s": int(total_m / best_new),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }


def _measure_obs_overhead(quick=False, repeats=REPEATS):
    """Time the headline kernel with observability disabled (the default
    NULL_OBS path every existing call site takes) and with a fully
    enabled ``Obs``, on identical inputs.  The disabled number is what
    the <5% regression gate watches; the enabled number is informational
    (tracing is expected to cost real time)."""
    from repro.core import schedule_random_rank
    from repro.obs import Obs

    n = 256 if quick else 1024
    ft, m, workload = _build_case("random_rank", n)
    disabled_s, _ = _time(
        lambda ft, m: schedule_random_rank(ft, m, seed=0), ft, m, repeats=repeats
    )
    enabled_s, _ = _time(
        lambda ft, m: schedule_random_rank(ft, m, seed=0, obs=Obs(enabled=True)),
        ft,
        m,
        repeats=repeats,
    )
    return {
        "case": f"random_rank {workload} n={n}",
        "disabled_s": round(disabled_s, 6),
        "enabled_s": round(enabled_s, 6),
        "enabled_over_disabled": round(enabled_s / disabled_s, 2),
    }


def run_bench(quick=False):
    """All timed cases; the first row is the acceptance configuration."""
    if quick:
        cases = [
            ("random_rank perm n=256", "random_rank", 256, None, None),
            ("random_rank uniform n=256", "random_rank", 256, 40, 4),
            ("greedy uniform n=128", "greedy", 128, 26, 4),
        ]
        repeats = 1
    else:
        cases = [
            ("random_rank perm n=1024", "random_rank", 1024, None, None),
            ("random_rank uniform n=512", "random_rank", 512, 64, 6),
            ("random_rank uniform n=1024", "random_rank", 1024, 102, 4),
            ("greedy uniform n=128", "greedy", 128, 26, 4),
            ("greedy uniform n=256", "greedy", 256, 40, 4),
            ("greedy perm n=1024", "greedy", 1024, None, None),
        ]
        repeats = REPEATS
    rows = [
        _run_case(label, kind, n, w, mpp, repeats=repeats)
        for label, kind, n, w, mpp in cases
    ]
    # the batched case is millisecond-scale: always take best-of-3 so
    # the quick-mode ≥3× gate doesn't flap on a single noisy sample
    rows.append(_run_batched_case(repeats=max(repeats, 3)))
    overhead = _measure_obs_overhead(quick=quick, repeats=repeats)
    RESULTS_PATH.write_text(
        json.dumps(
            {"quick": quick, "results": rows, "obs_overhead": overhead}, indent=2
        )
        + "\n"
    )
    return rows


def _gate_failures(rows, quick):
    """Every acceptance-gate violation in ``rows`` as human-readable
    strings (empty list == all gates pass).

    Full mode gates the PR 2 headline (random_rank n=1024 ≥5×) and the
    greedy n=1024 case (≥5×); both modes gate greedy n=128 (≥2×) and
    the batched case (≥3× over the serial per-set loop), so the CI
    ``--quick`` smoke enforces the latter two on every push.
    """
    by_case = {row["case"]: row for row in rows}

    def check(case, minimum, failures):
        row = by_case.get(case)
        if row is None:
            failures.append(f"{case}: case missing from bench results")
        elif row["speedup"] < minimum:
            failures.append(
                f"{case}: expected >={minimum}x, measured {row['speedup']}x"
            )

    failures = []
    if not quick:
        check("random_rank perm n=1024", 5.0, failures)
        check("greedy perm n=1024", 5.0, failures)
    check("greedy uniform n=128", 2.0, failures)
    check("batched random_rank B=32 n=256", 3.0, failures)
    return failures


def test_vectorised_kernels_speedup(report):
    """The acceptance gates: ≥5× on schedule_random_rank and greedy at
    n=1024, ≥2× on greedy at n=128, ≥3× on batch_schedule over the
    serial per-set loop at B=32 n=256 — schedules bit-identical in
    every case (asserted inside the timing harness)."""
    rows = run_bench(quick=False)
    report(rows, title="PERF — vectorised kernels vs pure-Python reference")
    headline = rows[0]
    assert headline["kernel"] == "random_rank" and headline["n"] == 1024
    failures = _gate_failures(rows, quick=False)
    assert not failures, "acceptance: " + "; ".join(failures)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, single repeat (CI smoke); skips the n=1024 "
        "gates but still enforces the greedy n=128 and batched ones",
    )
    parser.add_argument(
        "--obs-gate",
        action="store_true",
        help="gate the obs-disabled headline wall clock against the "
        "BENCH_PERF.json written by a previous run on this machine "
        "(<5%% regression, with a 10 ms absolute noise floor)",
    )
    args = parser.parse_args(argv)
    baseline = None
    if args.obs_gate and RESULTS_PATH.exists():
        # read the previous headline before run_bench overwrites the file
        prev = json.loads(RESULTS_PATH.read_text())
        if prev.get("quick") == args.quick and prev.get("results"):
            baseline = prev["results"][0]
    rows = run_bench(quick=args.quick)
    from repro.analysis import format_table

    print(format_table(rows, title="PERF — vectorised kernels vs reference"))
    overhead = json.loads(RESULTS_PATH.read_text())["obs_overhead"]
    print(
        f"obs overhead ({overhead['case']}): disabled {overhead['disabled_s']}s, "
        f"enabled {overhead['enabled_s']}s "
        f"({overhead['enabled_over_disabled']}x, informational)"
    )
    print(f"wrote {RESULTS_PATH}")
    failures = _gate_failures(rows, quick=args.quick)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    if args.obs_gate:
        if baseline is None:
            print(
                "obs gate: no comparable baseline in BENCH_PERF.json "
                "(run the bench once first on this machine)"
            )
            return 1
        fresh = rows[0]["vectorised_s"]
        old = baseline["vectorised_s"]
        # 5% relative, with an absolute floor so millisecond-scale quick
        # headlines don't flap on scheduler jitter
        limit = max(1.05 * old, old + 0.010)
        verdict = "OK" if fresh <= limit else "FAIL"
        print(
            f"obs gate: headline {baseline['case']} — baseline {old}s, "
            f"fresh {fresh}s, limit {round(limit, 6)}s: {verdict}"
        )
        if verdict == "FAIL":
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
