"""E7 — Theorem 10: the universality simulation.

For each competitor network R of volume v, run its traffic on the
universal fat-tree of the same volume and measure the slowdown.  The
asserted shape: slowdown <= O(lg³ n) for every competitor and workload,
with the polylog growth confirmed across sizes.
"""

import math

import pytest

from repro.networks import (
    BinaryTreeNetwork,
    Hypercube,
    Mesh2D,
    ShuffleExchange,
)
from repro.universality import simulate_network_on_fattree
from repro.workloads import random_permutation


from repro.workloads import cyclic_shift


def neighbour_round(net):
    m = net.neighbor_message_set()
    if len(m):
        return simulate_network_on_fattree(net, m, t=1)
    # processors linked only through switches (the binary tree): use the
    # neighbour-shift workload at its measured store-and-forward time
    return simulate_network_on_fattree(net, cyclic_shift(net.n, 1))


@pytest.mark.parametrize(
    "family",
    [
        ("mesh2d", Mesh2D),
        ("hypercube", Hypercube),
        ("shuffle-exchange", ShuffleExchange),
        ("tree", BinaryTreeNetwork),
    ],
    ids=lambda f: f[0],
)
def test_neighbor_round_slowdown(family, report, benchmark):
    name, cls = family
    rows = []
    for n in (64, 256, 1024):
        net = cls(n)
        res = neighbour_round(net)
        bound = res.bound()
        rows.append(
            {
                "n": n,
                "volume v": res.volume,
                "FT root cap": res.root_capacity,
                "λ(M)": res.load_factor,
                "cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "O(lg³n)": bound,
                "within": res.slowdown <= bound,
            }
        )
        assert res.slowdown <= bound
    report(rows, title=f"E7 / Theorem 10 — fat-tree simulating {name} (t = 1)")
    # polylog growth: the slowdown may grow like lg³ n (with slack for
    # the Theorem 1 constant kicking in), never like the 16x of n itself
    lg_ratio = math.log2(1024) / math.log2(64)
    assert rows[-1]["slowdown"] / rows[0]["slowdown"] < 4 * lg_ratio ** 3
    benchmark(neighbour_round, cls(64))


def test_permutation_workload_slowdown(report, benchmark):
    rows = []
    for cls in (Mesh2D, Hypercube):
        net = cls(256)
        m = random_permutation(256, seed=11)
        res = simulate_network_on_fattree(net, m)
        rows.append(
            {
                "network R": net.name,
                "t on R": res.t,
                "FT cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "bound": res.bound(),
            }
        )
        assert res.slowdown <= res.bound()
    report(rows, title="E7 — permutation traffic at measured t")
    benchmark(
        simulate_network_on_fattree,
        Mesh2D(64),
        random_permutation(64, seed=3),
    )


def test_ccc_bounded_degree_competitor(report, benchmark):
    """The Galil-Paul substrate (§VI ref [7]): cube-connected cycles,
    hypercube bandwidth at degree 3, against the equal-volume fat-tree."""
    from repro.networks import CubeConnectedCycles

    rows = []
    for d in (4, 8):  # n = d·2^d is a power of two for power-of-two d
        net = CubeConnectedCycles(d)
        res = neighbour_round(net)
        rows.append(
            {
                "d": d,
                "n": net.n,
                "degree": net.degree(),
                "volume v": res.volume,
                "λ(M)": res.load_factor,
                "cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "O(lg³n)": res.bound(),
            }
        )
        assert res.slowdown <= res.bound()
    report(rows, title="E7 — fat-tree simulating cube-connected cycles")
    benchmark(neighbour_round, CubeConnectedCycles(4))
