"""E16 — extension: the §VII generalisation to two dimensions.

"Our results should generalize to more complicated packaging models."
In Thompson's 2-D model the exponents transpose 2/3 → 1/2: decomposition
decay √2 per level, area O((w·lg(n/w))²), and the (geometry-blind)
scheduling theory unchanged.  Measured side by side with 3-D.
"""

import math

import pytest

from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.vlsi import (
    SQRT_2,
    Universal2DCapacity,
    area_bound,
    component_bound_2d,
    square_decomposition_bandwidth,
    total_components,
    volume_bound,
)
from repro.workloads import uniform_random


def test_dimension_comparison(report, benchmark):
    rows = []
    for n in (256, 1024, 4096):
        w2 = math.ceil(n ** 0.5) * 4   # a legal 2-D root capacity
        w3 = math.ceil(n ** (2 / 3))   # the 3-D minimum
        ft2 = FatTree(n, Universal2DCapacity(n, w2))
        ft3 = FatTree(n, UniversalCapacity(n, w3))
        rows.append(
            {
                "n": n,
                "2-D w": w2,
                "2-D area": area_bound(n, w2, 1.0),
                "2-D components": total_components(ft2),
                "3-D w": w3,
                "3-D volume": volume_bound(n, w3, 1.0),
                "3-D components": total_components(ft3),
            }
        )
        assert total_components(ft2) <= component_bound_2d(n, w2)
    report(rows, title="E16 / §VII — 2-D (Thompson) vs 3-D universal fat-trees")
    benchmark(total_components, FatTree(1024, Universal2DCapacity(1024, 128)))


def test_sqrt2_decay(report, benchmark):
    rows = []
    area = 65536.0
    for level in range(0, 8, 2):
        rows.append(
            {
                "level": level,
                "w_i": square_decomposition_bandwidth(area, level),
                "decay from level 0": square_decomposition_bandwidth(area, 0)
                / square_decomposition_bandwidth(area, level),
            }
        )
    report(rows, title="E16 — 2-D decomposition decay (√2 per level)")
    for i, row in enumerate(rows):
        assert row["decay from level 0"] == pytest.approx(SQRT_2 ** (2 * i))
    benchmark(square_decomposition_bandwidth, area, 4)


def test_scheduling_identical_across_models(report, benchmark):
    """The same traffic, scheduled on 2-D and 3-D trees of matching root
    capacity, behaves identically: §III sees only the profile."""
    n = 256
    w = 64
    ft2 = FatTree(n, Universal2DCapacity(n, w))
    ft3 = FatTree(n, UniversalCapacity(n, w))
    m = uniform_random(n, 4 * n, seed=0)
    rows = []
    for name, ft in [("2-D", ft2), ("3-D", ft3)]:
        lam = load_factor(ft, m)
        sched = schedule_theorem1(ft, m)
        sched.validate(ft, m)
        rows.append({"model": name, "λ(M)": lam, "cycles": sched.num_cycles})
    report(rows, title=f"E16 — same w = {w}, same traffic, both models")
    # the 2-D profile is pointwise >= the 3-D one between the crossovers,
    # so its load factor cannot be larger
    assert rows[0]["λ(M)"] <= rows[1]["λ(M)"]
    benchmark(schedule_theorem1, ft2, m)
