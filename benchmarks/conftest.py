"""Shared fixtures for the benchmark harnesses.

Each bench regenerates one experiment from DESIGN.md's index: it prints
the rows a reader would compare with the paper (via the ``report``
fixture, which bypasses pytest's capture so tables appear in the bench
log) and *asserts* the shape properties, so a red bench means the
reproduction regressed.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment tables to the real terminal."""

    def _report(rows, columns=None, *, title=None):
        from repro.analysis import format_table

        with capsys.disabled():
            print()
            print(format_table(rows, columns, title=title))

    return _report
