"""Shared fixtures for the benchmark harnesses.

Each bench regenerates one experiment from DESIGN.md's index: it prints
the rows a reader would compare with the paper (via the ``report``
fixture, which bypasses pytest's capture so tables appear in the bench
log) and *asserts* the shape properties, so a red bench means the
reproduction regressed.

Parameter sweeps route through :func:`repro.analysis.sweep` (the
``sweep`` fixture): set ``REPRO_SWEEP_JOBS=N`` to fan a bench's
parameter sets out over N worker processes — rows come back in input
order, so the printed tables are identical either way.
"""

import functools
import os

import pytest


@pytest.fixture
def report(capsys):
    """Print experiment tables to the real terminal."""

    def _report(rows, columns=None, *, title=None):
        from repro.analysis import format_table

        with capsys.disabled():
            print()
            print(format_table(rows, columns, title=title))

    return _report


@pytest.fixture
def sweep():
    """The repro.analysis sweep runner, parallelised via REPRO_SWEEP_JOBS."""
    from repro.analysis import sweep as _sweep

    n_jobs = int(os.environ.get("REPRO_SWEEP_JOBS", "1"))
    return functools.partial(_sweep, n_jobs=max(1, n_jobs))
