"""E9 — §VI: permutation routing on full-volume fat-trees vs the Beneš
network.

"A universal fat-tree on n processors with Θ(n^{3/2}) volume can route an
arbitrary permutation off-line in time O(lg n).  Up to constant factors
this is the best possible bound … also achievable, for instance, by Beneš
networks."  Measured claims: every permutation has λ <= 1 on the
full fat-tree; Theorem 1 routes it in O(lg n) cycles; cycles grow
linearly in lg n (slope ~1 in the fit); the Beneš looping algorithm
settles the same permutations with vertex-disjoint paths in 2·lg n
levels.
"""

import math

import pytest

from repro.analysis import fit_loglog
from repro.core import FatTree, load_factor, schedule_theorem1
from repro.networks import Benes
from repro.workloads import bit_reversal, random_permutation, tornado, transpose


def route_permutation(n, perm):
    ft = FatTree(n)
    lam = load_factor(ft, perm)
    sched = schedule_theorem1(ft, perm)
    return lam, sched


@pytest.mark.parametrize(
    "workload",
    ["random", "bit-reversal", "transpose", "tornado"],
)
def test_fat_tree_permutations_o_lg_n(workload, report, benchmark):
    rows = []
    cycle_counts = []
    sizes = [16, 64, 256, 1024]
    for n in sizes:
        if workload == "random":
            perm = random_permutation(n, seed=n)
        elif workload == "bit-reversal":
            perm = bit_reversal(n)
        elif workload == "transpose":
            perm = transpose(n)
        else:
            perm = tornado(n)
        lam, sched = route_permutation(n, perm)
        rows.append(
            {
                "n": n,
                "lg n": int(math.log2(n)),
                "λ(M)": lam,
                "FT cycles": sched.num_cycles,
                "4·lg n": 4 * int(math.log2(n)),
            }
        )
        assert lam <= 1.0  # any permutation is one-cycle on w = n
        assert sched.num_cycles <= 2 * int(math.log2(n))
        cycle_counts.append(max(1, sched.num_cycles))
    report(rows, title=f"E9 / §VI — {workload} permutations on w = n fat-trees")
    # growth linear in lg n, not polynomial in n
    fit = fit_loglog([math.log2(n) for n in sizes], cycle_counts)
    assert fit.slope <= 1.6
    benchmark(route_permutation, 64, random_permutation(64, seed=0))


def test_benes_comparison(report, benchmark):
    rows = []
    for n in (16, 64, 256):
        b = Benes(n)
        perm = random_permutation(n, seed=n)
        mapping = [0] * n
        for s, d in perm:
            mapping[s] = d
        b.verify_permutation_paths(mapping)
        _, sched = route_permutation(n, perm)
        rows.append(
            {
                "n": n,
                "Beneš port levels": b.levels,
                "FT delivery cycles": sched.num_cycles,
                "both O(lg n)": True,
            }
        )
        assert b.levels == 2 * int(math.log2(n))
    report(rows, title="E9 — Beneš looping algorithm vs fat-tree scheduling")
    benchmark(
        lambda: Benes(64).permutation_paths(
            [d for _, d in sorted(random_permutation(64, seed=1))]
        )
    )
