"""E14 — extension: the fat-tree's descendants and self-simulation.

Not from the paper.  Two sanity-of-the-model experiments:

* *Self-simulation*: the fat-tree, realised as an explicit switch
  network, embeds into the universal fat-tree of its own volume with
  bounded slowdown — the Theorem 10 machinery applied to its own output.
* *k-ary n-tree*: the multi-switch realisation actually built (CM-5,
  InfiniBand, datacenter Clos).  Same doubling cut capacities as
  Leiserson's abstraction, plus measured path diversity k^t.
"""

import math

import pytest

from repro.networks import FatTreeNetwork, KAryNTree, simulate_store_and_forward
from repro.universality import simulate_network_on_fattree
from repro.workloads import random_permutation


def test_self_simulation(report, benchmark):
    rows = []
    for n, w in [(64, 16), (256, 41), (256, 256)]:
        net = FatTreeNetwork(n, w)
        m = random_permutation(n, seed=n)
        res = simulate_network_on_fattree(net, m)
        rows.append(
            {
                "R = fat-tree(n, w)": f"({n}, {w})",
                "volume": res.volume,
                "t on R": res.t,
                "sim cycles": res.delivery_cycles,
                "slowdown": res.slowdown,
                "O(lg³n)": res.bound(),
            }
        )
        assert res.slowdown <= res.bound()
    report(rows, title="E14 — a fat-tree simulating a fat-tree (Thm 10 on itself)")
    benchmark(
        simulate_network_on_fattree,
        FatTreeNetwork(64, 16),
        random_permutation(64, seed=0),
    )


def test_kary_ntree_structure(report, benchmark):
    rows = []
    for k, lv in [(2, 4), (2, 6), (4, 3), (8, 2)]:
        t = KAryNTree(k, lv)
        m = random_permutation(t.n, seed=k * lv)
        steps = simulate_store_and_forward(t, m)
        rows.append(
            {
                "k": k,
                "levels": lv,
                "n": t.n,
                "switches": t.total_switches(),
                "bisection": t.bisection_width(),
                "max diversity": t.path_diversity(0, t.n - 1),
                "perm steps": steps,
            }
        )
        # full bisection and k^(levels-1) disjoint paths top to bottom
        assert t.bisection_width() == t.n // 2
        assert t.path_diversity(0, t.n - 1) == k ** (lv - 1)
        # logarithmic-depth permutation routing (path length 2·levels)
        assert steps <= 8 * lv
    report(rows, title="E14 — k-ary n-trees (the modern fat-tree realisation)")
    benchmark(simulate_store_and_forward, KAryNTree(2, 5),
              random_permutation(32, seed=1))


def test_switch_count_comparison(report, benchmark):
    """Leiserson's single fat switch per tree node vs the k-ary n-tree's
    many unit switches: the *wire* budgets match at every cut, the
    packaging differs."""
    from repro.core import FatTree

    rows = []
    for lv in (3, 4, 5, 6):
        n = 2 ** lv
        leiserson = FatTree(n)  # w = n: full doubling capacities
        kary = KAryNTree(2, lv)
        # wires crossing the bisection
        rows.append(
            {
                "n": n,
                "Leiserson root wires": leiserson.cap(1) * 2,
                "k-ary bisection links": kary.bisection_width(),
                "Leiserson switches": n - 1,
                "k-ary switches": kary.total_switches(),
            }
        )
        assert leiserson.cap(1) * 2 == 2 * kary.bisection_width()
    report(rows, title="E14 — same cut bandwidth, different packaging")
    benchmark(KAryNTree, 2, 6)
