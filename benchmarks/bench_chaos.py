"""CHAOS — incremental rerouting vs full recompute, and degradation curves.

Two measurements for the :mod:`repro.chaos` recovery stack, recorded
into ``BENCH_CHAOS.json`` at the repository root:

1. **Incremental reroute speedup** — when a timeline event changes a
   handful of channel capacities mid-run, the recovery path patches the
   shared :class:`repro.perf.PathIndex` via ``invalidate_channels``
   (``O(num_slots + changed)``) instead of rebuilding it from scratch
   (``O(m·depth)``).  Acceptance gate: ≥2× at ``n = 1024`` with 4096
   messages (the gap widens with ``m``; at fleet scale a rebuild per
   fault event would dominate the simulation).

2. **Graceful degradation curves** — delivered fraction as a function
   of injected fault rate, for (a) self-healing wire storms (every drop
   has a scheduled repair: the floor is delivery of *everything*) and
   (b) unrepaired switch kills (the floor is exactly the traffic whose
   only path survives; severed messages are dropped, not wedged).

Run standalone with ``PYTHONPATH=src python benchmarks/bench_chaos.py``
(``--quick`` for the CI smoke subset, which still enforces the 2× gate
at a smaller size) or via pytest as a bench.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_CHAOS.json"
REPEATS = 5


def _reroute_case(n, m_count, changed, *, repeats=REPEATS, seed=0):
    """Time invalidate_channels against a from-scratch PathIndex build
    after one capacity mutation touching ``changed`` channels."""
    import numpy as np

    from repro.core import Direction, FatTree
    from repro.faults import DegradedFatTree, FaultModel
    from repro.perf import PathIndex, pack_gid
    from repro.workloads import uniform_random

    ft = DegradedFatTree(FatTree(n), FaultModel())
    messages = uniform_random(n, m_count, seed=seed)
    index = PathIndex(ft, messages)
    rng = np.random.default_rng(seed)
    # one wire drop per changed channel, drawn from the deepest level
    level = ft.depth
    picks = rng.choice(1 << level, size=min(changed, 1 << level), replace=False)
    updates = [
        (level, int(x), Direction.UP, max(0, ft.chan_cap(level, int(x), Direction.UP) - 1))
        for x in picks
    ]
    ft.set_channel_caps(updates)
    gids = [int(pack_gid(level, int(x), 0)) for x in picks]

    incremental = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        patched = index.invalidate_channels(ft, gids)
        incremental = min(incremental, time.perf_counter() - t0)
    full = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        rebuilt = PathIndex(ft, messages)
        full = min(full, time.perf_counter() - t0)
    assert (patched.caps == rebuilt.caps).all(), "patched caps diverge from rebuild"
    assert (patched.paths is index.paths), "invalidate_channels copied the path matrix"
    return {
        "case": f"reroute n={n} m={m_count} changed={len(gids)}",
        "n": n,
        "messages": m_count,
        "changed_channels": len(gids),
        "full_rebuild_s": round(full, 6),
        "incremental_s": round(incremental, 6),
        "speedup": round(full / incremental, 2),
    }


def _degradation_point(n, m_count, rate, scenario, *, seed=0):
    """Delivered fraction for one fault rate under one scenario."""
    import numpy as np

    from repro.chaos import (
        ChaosEvent,
        ChaosSchedule,
        delivered_fraction,
        run_chaos_random_rank,
    )
    from repro.core import FatTree
    from repro.workloads import uniform_random

    ft = FatTree(n)
    messages = uniform_random(n, m_count, seed=seed)
    rng = np.random.default_rng([seed, int(rate * 1000)])
    events = []
    if scenario == "healing-wires":
        # hit `rate` of the deepest level's up-channels; every drop repairs
        hits = max(0, round(rate * (1 << ft.depth)))
        for x in rng.choice(1 << ft.depth, size=hits, replace=False).tolist():
            at = int(rng.integers(0, 4))
            events.append(
                ChaosEvent(at=at, kind="wire-drop", level=ft.depth, index=int(x))
            )
            events.append(
                ChaosEvent(
                    at=at + 1 + int(rng.integers(1, 4)),
                    kind="wire-repair",
                    level=ft.depth,
                    index=int(x),
                )
            )
    else:  # dead-switches: unrepaired leaf-level kills
        hits = max(0, round(rate * (1 << (ft.depth - 1))))
        for x in rng.choice(
            1 << (ft.depth - 1), size=hits, replace=False
        ).tolist():
            events.append(
                ChaosEvent(
                    at=int(rng.integers(0, 4)),
                    kind="switch-kill",
                    level=ft.depth - 1,
                    index=int(x),
                )
            )
    sched = run_chaos_random_rank(ft, messages, ChaosSchedule(tuple(events)))
    sched.validate(ft, messages)
    fraction = delivered_fraction(sched)
    n_dropped = 0 if sched.dropped is None else len(sched.dropped)
    return {
        "scenario": scenario,
        "fault_rate": rate,
        "events": len(events),
        "cycles": sched.num_cycles,
        "dropped": n_dropped,
        "delivered_fraction": round(fraction, 4),
    }


def run_bench(quick=False):
    """All measurements; the first reroute row is the acceptance gate."""
    repeats = 2 if quick else REPEATS
    if quick:
        reroute_cases = [(256, 1024, 8), (256, 1024, 64)]
        n_curve, m_curve = 64, 192
    else:
        reroute_cases = [(1024, 4096, 8), (1024, 4096, 64), (512, 2048, 16)]
        n_curve, m_curve = 128, 384
    reroute = [
        _reroute_case(n, m, changed, repeats=repeats)
        for n, m, changed in reroute_cases
    ]
    rates = [0.0, 0.125, 0.25, 0.5] if quick else [0.0, 0.125, 0.25, 0.5, 0.75]
    curves = [
        _degradation_point(n_curve, m_curve, rate, scenario)
        for scenario in ("healing-wires", "dead-switches")
        for rate in rates
    ]
    # graceful-degradation floors: healing scenarios deliver everything;
    # unrepaired kills drop only genuinely-severed traffic, never wedge
    for row in curves:
        if row["scenario"] == "healing-wires":
            assert row["delivered_fraction"] == 1.0, (
                f"healing scenario dropped traffic: {row}"
            )
        else:
            floor = 1.0 - row["fault_rate"]
            assert row["delivered_fraction"] >= floor - 0.35, (
                f"degradation not graceful: {row} (floor ~{floor})"
            )
    RESULTS_PATH.write_text(
        json.dumps(
            {"quick": quick, "reroute": reroute, "degradation": curves},
            indent=2,
        )
        + "\n"
    )
    return reroute, curves


def test_incremental_reroute_speedup(report):
    """The chaos acceptance gate: invalidate_channels ≥2× over a full
    PathIndex rebuild at n=1024 / m=4096, plus graceful-degradation
    floors on the delivered-fraction curves."""
    reroute, curves = run_bench(quick=False)
    report(reroute, title="CHAOS — incremental reroute vs full rebuild")
    report(curves, title="CHAOS — delivered fraction vs fault rate")
    headline = reroute[0]
    assert headline["n"] == 1024 and headline["messages"] == 4096
    assert headline["speedup"] >= 2.0, (
        f"acceptance: expected >=2x on invalidate_channels at n=1024, "
        f"measured {headline['speedup']}x"
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, fewer repeats (CI smoke); keeps the 2x gate",
    )
    args = parser.parse_args(argv)
    reroute, curves = run_bench(quick=args.quick)
    from repro.analysis import format_table

    print(format_table(reroute, title="CHAOS — incremental reroute vs full rebuild"))
    print()
    print(format_table(curves, title="CHAOS — delivered fraction vs fault rate"))
    print(f"wrote {RESULTS_PATH}")
    headline = reroute[0]
    if headline["speedup"] < 2.0:
        print(f"FAIL: incremental reroute speedup {headline['speedup']}x < 2x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
