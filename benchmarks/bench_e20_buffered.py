"""E20 — extension: circuit-switched delivery cycles vs buffered
store-and-forward (§VII design alternatives).

Same fat-tree, same traffic, two switch designs:

* the paper's design — bufferless circuit-switched delivery cycles, an
  off-line schedule, total time = cycles × (2·lg n − 1) switch ticks;
* the alternative — per-node queues, dynamic oldest-first forwarding,
  total time = makespan steps (one step ≈ one switch tick per hop),
  bought with measured buffer depth.

Asserted shape: both land in the congestion + dilation envelope; the
buffered design's makespan tracks max(λ, 2·lg n) while the scheduled
design pays the Theorem 1 lg n factor in cycles but needs zero buffers.
"""

import math

import pytest

from repro.core import (
    FatTree,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
)
from repro.hardware import run_store_and_forward
from repro.workloads import (
    bisection_stress,
    hotspot,
    random_permutation,
    uniform_random,
)


def compare(name, ft, m):
    lam = load_factor(ft, m)
    sched = schedule_theorem1(ft, m)
    ticks_per_cycle = 2 * ft.depth - 1
    buffered = run_store_and_forward(ft, m)
    return {
        "workload": name,
        "λ(M)": lam,
        "scheduled cycles": sched.num_cycles,
        "scheduled ticks": sched.num_cycles * ticks_per_cycle,
        "buffered makespan": buffered.makespan,
        "mean latency": buffered.mean_latency,
        "max queue": buffered.max_queue_depth,
    }


def test_design_comparison(report, benchmark):
    n = 256
    ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
    rows = []
    for name, m in [
        ("permutation", random_permutation(n, seed=0)),
        ("uniform x4", uniform_random(n, 4 * n, seed=1)),
        ("hotspot", hotspot(n, 2 * n, seed=2)),
        ("bisection", bisection_stress(n, m_per_proc=2, seed=3)),
    ]:
        row = compare(name, ft, m)
        rows.append(row)
        lam = row["λ(M)"]
        assert row["buffered makespan"] >= math.ceil(lam)
        assert row["buffered makespan"] <= 1.5 * math.ceil(lam) + 2 * ft.depth
    report(rows, title=f"E20 / §VII — two switch designs, n = {n}")
    # buffered store-and-forward avoids the delivery-cycle batching tax
    # whenever traffic is heavy (it pipelines across what would be cycle
    # boundaries)
    heavy = rows[1]
    assert heavy["buffered makespan"] <= heavy["scheduled ticks"]
    benchmark(
        run_store_and_forward, ft, uniform_random(n, 2 * n, seed=4)
    )


def test_buffer_depth_scaling(report, benchmark):
    """The price of bufferless operation, inverted: queue depth under
    increasing load on the buffered design."""
    n = 128
    ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
    rows = []
    depths = []
    for mult in (1, 4, 16):
        m = uniform_random(n, mult * n, seed=mult)
        run = run_store_and_forward(ft, m)
        rows.append(
            {
                "messages/proc": mult,
                "λ(M)": load_factor(ft, m),
                "makespan": run.makespan,
                "max queue depth": run.max_queue_depth,
            }
        )
        depths.append(run.max_queue_depth)
    report(rows, title="E20 — buffering grows with load")
    assert depths == sorted(depths)
    benchmark(run_store_and_forward, ft, uniform_random(n, 4 * n, seed=9))
