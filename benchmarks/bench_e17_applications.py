"""E17 — extension: whole-application traces.

Schedules every communication round of complete parallel algorithms
(FFT, bitonic sort, stencil, sparse mat-vec, all-reduce) on fat-trees of
several root capacities.  Asserted shapes: per-round validity, the
expected sensitivity split (global algorithms scale with w, local ones
don't), and O(lg² n) whole-FFT time on the full fat-tree.
"""

import math

import pytest

from repro.core import FatTree, UniversalCapacity
from repro.workloads import (
    allreduce_trace,
    bitonic_sort_trace,
    fft_trace,
    schedule_trace,
    sparse_matvec_trace,
    stencil_trace,
)


def run_trace(n, w, trace_fn):
    ft = FatTree(n, UniversalCapacity(n, w))
    trace = trace_fn(n)
    _, total = schedule_trace(ft, trace)
    return trace, total


def test_application_sweep(report, benchmark):
    n = 256
    rows = []
    for trace_fn in (fft_trace, bitonic_sort_trace,
                     lambda m: stencil_trace(m, iterations=8),
                     lambda m: sparse_matvec_trace(m, iterations=8, seed=0),
                     allreduce_trace):
        trace, full = run_trace(n, n, trace_fn)
        _, skinny = run_trace(n, math.ceil(n ** (2 / 3)), trace_fn)
        rows.append(
            {
                "application": trace.name,
                "rounds": len(trace),
                "cycles (w=n)": full,
                "cycles (w=n^2/3)": skinny,
                "penalty": skinny / full,
            }
        )
    report(rows, title=f"E17 — whole applications on n = {n} fat-trees")
    by_name = {r["application"]: r for r in rows}
    # the local stencil is insensitive to the root; the global FFT pays
    assert by_name["stencil"]["penalty"] <= by_name["fft"]["penalty"]
    benchmark(run_trace, 64, 64, fft_trace)


def test_fft_time_is_polylog(report, benchmark):
    """On the full fat-tree every butterfly round is one-cycle-ish, so a
    whole FFT takes O(lg² n) delivery cycles."""
    rows = []
    for n in (64, 256, 1024):
        trace, total = run_trace(n, n, fft_trace)
        lg = int(math.log2(n))
        rows.append(
            {"n": n, "rounds lg n": len(trace), "cycles": total,
             "bound 2·lg² n": 2 * lg * lg}
        )
        assert total <= 2 * lg * lg
    report(rows, title="E17 — FFT end-to-end on w = n fat-trees")
    benchmark(run_trace, 256, 256, fft_trace)
