"""E18 — the §II telephone-exchange claim, quantified.

"The differing lengths of paths in the fat-tree are actually a major
advantage of the network because messages can be routed locally without
soaking up the precious bandwidth higher up in the tree, much as
telephone communications are routed within an exchange without using
more expensive trunk lines."

Sweeping the locality knob of the traffic generator from sibling-local
to uniform-global: the top-of-tree traffic share, the load factor, and
the delivery-cycle count must all track locality, while local traffic
rides for (nearly) free even on skinny trees.
"""

import math

import pytest

from repro.analysis import schedule_stats, traffic_stats
from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.workloads import local_traffic


def run(decay, n=256, m_per_proc=8):
    ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
    m = local_traffic(n, m_per_proc * n, decay=decay, seed=17)
    ts = traffic_stats(ft, m)
    lam = load_factor(ft, m)
    sched = schedule_theorem1(ft, m)
    ss = schedule_stats(ft, sched)
    return ft, ts, lam, sched, ss


def test_locality_sweep(report, benchmark):
    rows = []
    results = []
    for decay in (0.125, 0.25, 0.5, 1.0, 2.0):
        ft, ts, lam, sched, ss = run(decay)
        rows.append(
            {
                "decay": decay,
                "locality": ts.locality,
                "mean path": ts.mean_path_length,
                "top-level share": ts.top_level_share,
                "λ(M)": lam,
                "cycles": sched.num_cycles,
                "root utilisation": ss.level_utilisation[1],
            }
        )
        results.append((ts, lam, sched))
    report(rows, title="E18 / §II — the locality dividend (skinny fat-tree)")
    benchmark(run, 0.5, 64)
    # the three monotonicity claims: locality falls, load factor and
    # cycle count rise as traffic goes global
    localities = [r["locality"] for r in rows]
    lams = [r["λ(M)"] for r in rows]
    cycles = [r["cycles"] for r in rows]
    assert localities == sorted(localities, reverse=True)
    # λ and cycles rise end to end (per-step monotonicity is noisy: the
    # unit leaf channels add a locality-independent floor)
    assert lams[-1] > lams[0]
    assert cycles[-1] >= cycles[0]
    # sibling-heavy traffic barely touches the trunk
    assert rows[0]["top-level share"] < 0.05
    assert rows[-1]["top-level share"] > 0.15


def test_local_traffic_rides_free(report, benchmark):
    """The same message *count*, local vs global, on the same skinny
    tree: locality buys a large cycle-count factor."""
    rows = []
    _, _, lam_l, sched_l, _ = run(0.125)
    _, _, lam_g, sched_g, _ = run(2.0)
    rows.append(
        {
            "traffic": "sibling-local (decay 1/8)",
            "λ": lam_l,
            "cycles": sched_l.num_cycles,
        }
    )
    rows.append(
        {"traffic": "uniform-global (decay 2)", "λ": lam_g,
         "cycles": sched_g.num_cycles}
    )
    report(rows, title="E18 — equal volume of traffic, unequal cost")
    assert sched_g.num_cycles >= 2 * sched_l.num_cycles
    benchmark(run, 2.0, 64)
