"""E10 — §VI application: emulating fixed-connection networks with
O(lg n) degradation.

With processor connections allowed to be d and capacities inflated by the
degree, one communication round of any degree-d fixed-connection network
becomes a one-cycle message set: delivered in a single O(lg n)-tick
delivery cycle.  Measured claims: λ <= 1 after inflation for every
network family; degradation grows logarithmically across a 16x size
sweep.
"""

import math

import pytest

from repro.networks import Hypercube, Mesh2D, ShuffleExchange, Torus2D
from repro.universality import emulate_fixed_connection


@pytest.mark.parametrize(
    "family",
    [
        ("mesh2d", Mesh2D, [64, 256, 1024]),
        ("torus2d", Torus2D, [64, 256, 1024]),
        ("hypercube", Hypercube, [64, 256, 1024]),
        ("shuffle-exchange", ShuffleExchange, [64, 256, 1024]),
    ],
    ids=lambda f: f[0],
)
def test_emulation_degradation(family, report, benchmark):
    name, cls, sizes = family
    rows = []
    degradations = []
    for n in sizes:
        res = emulate_fixed_connection(cls(n))
        rows.append(
            {
                "n": n,
                "degree d": res.degree,
                "inflation": res.capacity_inflation,
                "λ(round)": res.load_factor,
                "cycles": res.delivery_cycles,
                "degradation (ticks)": res.degradation,
                "O(lg n)": 4 * int(math.log2(n)),
            }
        )
        assert res.load_factor <= 1.0
        assert res.delivery_cycles == 1
        assert res.degradation <= 4 * int(math.log2(n))
        degradations.append(res.degradation)
    report(rows, title=f"E10 / §VI — emulating the {name}")
    # logarithmic growth: 16x more processors < 2x more degradation
    assert degradations[-1] / degradations[0] < 2.0
    benchmark(emulate_fixed_connection, cls(64))
