"""E15 — extension: on-line routing (§VI, the announced ref [8]).

The paper announces a randomized on-line algorithm achieving
O(λ(M) + lg n·lg lg n) delivery cycles w.h.p.  The random-rank router
implemented here is measured against that shape: cycles track λ with an
additive polylog term, across sizes and loads, and the off-line
Theorem 1 / Corollary 2 schedules remain at most a small factor better.
"""

import math

import pytest

from repro.core import (
    FatTree,
    UniversalCapacity,
    load_factor,
    online_cycle_bound,
    schedule_random_rank,
    schedule_theorem1,
)
from repro.workloads import uniform_random


def run_online(n, load_per_proc, seed=0):
    ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
    m = uniform_random(n, load_per_proc * n, seed=seed)
    lam = load_factor(ft, m)
    sched = schedule_random_rank(ft, m, seed=seed)
    sched.validate(ft, m)
    return ft, m, lam, sched


def measure_online(n, load):
    """One sweep point (module-level so a parallel sweep can pickle it)."""
    ft, m, lam, sched = run_online(n, load, seed=n + load)
    return {
        "λ(M)": lam,
        "online cycles": sched.num_cycles,
        "c·(λ+lg n·lglg n)": online_cycle_bound(ft, lam),
        "cycles/λ": sched.num_cycles / max(lam, 1.0),
    }


def test_online_tracks_lambda(report, benchmark, sweep):
    rows = sweep(
        measure_online,
        [{"n": n, "load": load} for n in (64, 256, 1024) for load in (2, 8)],
    )
    for r in rows:
        assert (
            math.ceil(r["λ(M)"])
            <= r["online cycles"]
            <= r["c·(λ+lg n·lglg n)"]
        )
    report(rows, title="E15 — random-rank on-line routing vs the [8] shape")
    # the overhead over λ stays bounded as n grows 16x
    ratios = [r["cycles/λ"] for r in rows]
    assert max(ratios) <= 3 * min(ratios) + 2
    benchmark(run_online, 64, 4)


def test_online_vs_offline(report, benchmark):
    """Price of being on-line: measured against Theorem 1."""
    rows = []
    for n in (64, 256):
        ft, m, lam, online = run_online(n, 6, seed=n)
        offline = schedule_theorem1(ft, m)
        rows.append(
            {
                "n": n,
                "λ": lam,
                "online": online.num_cycles,
                "offline (Thm 1)": offline.num_cycles,
                "online/offline": online.num_cycles / offline.num_cycles,
            }
        )
        # being online costs at most a small constant factor here
        assert online.num_cycles <= 3 * offline.num_cycles + 8
    report(rows, title="E15 — on-line vs off-line scheduling")
    benchmark(run_online, 128, 6)


def test_seed_stability(report, benchmark):
    """High probability means low variance: cycle counts across seeds
    cluster tightly."""
    n = 128
    counts = []
    for seed in range(10):
        _, _, lam, sched = run_online(n, 6, seed=seed)
        counts.append(sched.num_cycles)
    rows = [{
        "n": n,
        "min": min(counts),
        "max": max(counts),
        "spread": max(counts) / min(counts),
    }]
    report(rows, title="E15 — cycle-count concentration across seeds")
    assert max(counts) <= 1.7 * min(counts) + 2
    benchmark(run_online, 128, 6, 3)
