"""E8 — the §I motivation: hardware efficiency on planar finite-element
workloads.

A planar FEM neighbour exchange has bisection O(√n) (Lipton-Tarjan), so a
fat-tree sized to the workload sustains it with far less hardware than a
hypercube.  Measured claims: the FEM round needs the same few delivery
cycles on a w = Θ(n^{2/3}) fat-tree as on the full one, and the volume
advantage over the hypercube *grows* with n.
"""

import math

import pytest

from repro.core import FatTree, UniversalCapacity, load_factor, schedule_theorem1
from repro.vlsi import volume_bound
from repro.workloads import (
    triangulated_fem,
    fem_message_set,
    grid_fem_edges,
    planar_bisection_bound,
    triangulated_fem_edges,
)


def fem_round(n, w, mesh="grid"):
    if mesh == "grid":
        edges, points = grid_fem_edges(n), None
    else:
        edges, points = triangulated_fem(n, seed=0)
    m = fem_message_set(edges, n, placement="hilbert", points=points)
    ft = FatTree(n, UniversalCapacity(n, w))
    lam = load_factor(ft, m)
    sched = schedule_theorem1(ft, m)
    return lam, sched.num_cycles


@pytest.mark.parametrize("mesh", ["grid", "delaunay"])
def test_fem_volume_advantage(mesh, report, benchmark):
    rows = []
    for n in (64, 256, 1024, 4096):
        w_skinny = math.ceil(n ** (2 / 3))
        lam_full, d_full = fem_round(n, n, mesh)
        lam_skinny, d_skinny = fem_round(n, w_skinny, mesh)
        v_skinny = volume_bound(n, w_skinny, 1.0)
        v_cube = float(n) ** 1.5
        rows.append(
            {
                "n": n,
                "bisection O(√n)": planar_bisection_bound(n),
                "d (w=n)": d_full,
                "d (w=n^2/3)": d_skinny,
                "FT volume": v_skinny,
                "hypercube volume": v_cube,
                "volume saving": v_cube / v_skinny,
            }
        )
        # the skinny fat-tree must not be meaningfully slower on planar
        # traffic (crossing traffic is only O(√n) << w)
        assert d_skinny <= 2 * d_full + 2
    report(rows, title=f"E8 / §I — planar FEM ({mesh} mesh), hilbert placement")
    savings = [r["volume saving"] for r in rows]
    # the savings factor grows with n — the §I story
    assert savings[-1] > savings[0]
    assert savings[-1] > 3.0
    benchmark(fem_round, 256, 41, mesh)


def test_placement_ablation(report, benchmark):
    """Scrambled placement destroys the locality the fat-tree economises
    on — root load jumps from O(√n) toward Θ(n)."""
    rows = []
    for n in (256, 1024):
        edges = grid_fem_edges(n)
        ft = FatTree(n)
        good = fem_message_set(edges, n, placement="hilbert")
        bad = fem_message_set(edges, n, placement="random", seed=1)
        from repro.core import channel_loads

        root_good = int(channel_loads(ft, good).up[1].max())
        root_bad = int(channel_loads(ft, bad).up[1].max())
        rows.append(
            {
                "n": n,
                "root load (hilbert)": root_good,
                "root load (random)": root_bad,
                "O(√n) bound": planar_bisection_bound(n),
                "penalty": root_bad / max(1, root_good),
            }
        )
        assert root_good <= planar_bisection_bound(n)
        assert root_bad > root_good
    report(rows, title="E8 — processor placement ablation")
    benchmark(fem_message_set, grid_fem_edges(256), 256)
