"""E12 — Figs. 2-3: the bit-serial switch simulator.

Measured claims: a delivery cycle's wavefront takes exactly 2·lg n − 1
switch ticks (the §II O(lg n) delivery-cycle time); one-cycle message
sets route with zero congestion losses under ideal concentrators; the
acknowledge-and-retry loop converges for overloaded traffic, and partial
(Pippenger) concentrators cost only a constant-factor more cycles.
"""

import math

import pytest

from repro.core import FatTree, UniversalCapacity, load_factor
from repro.hardware import run_delivery_cycle, run_until_delivered
from repro.workloads import random_permutation, uniform_random


def one_cycle(n):
    ft = FatTree(n)
    m = random_permutation(n, seed=n)
    return run_delivery_cycle(ft, m)


def test_delivery_cycle_time_is_logarithmic(report, benchmark):
    rows = []
    for n in (16, 64, 256, 1024):
        r = one_cycle(n)
        rows.append(
            {
                "n": n,
                "lg n": int(math.log2(n)),
                "wave ticks": r.wave_ticks,
                "2·lg n − 1": 2 * int(math.log2(n)) - 1,
                "delivered": len(r.delivered),
                "lost": r.losses,
            }
        )
        assert r.wave_ticks == 2 * int(math.log2(n)) - 1
        assert r.losses == 0
    report(rows, title="E12 / Fig. 2-3 — delivery-cycle time (permutations)")
    benchmark(one_cycle, 256)


def test_retry_loop_convergence(report, benchmark):
    rows = []
    for n in (64, 256):
        ft = FatTree(n, UniversalCapacity(n, math.ceil(n ** (2 / 3))))
        m = uniform_random(n, 4 * n, seed=n)
        lam = load_factor(ft, m)
        ideal = run_until_delivered(ft, m, seed=0)
        partial = run_until_delivered(ft, m, concentrators="pippenger", seed=0)
        rows.append(
            {
                "n": n,
                "λ(M)": lam,
                "cycles (ideal)": ideal.cycles,
                "cycles (pippenger)": partial.cycles,
                "partial/ideal": partial.cycles / ideal.cycles,
            }
        )
        assert ideal.cycles >= math.ceil(lam)
        # α = 3/4 capacities cost only a constant factor
        assert partial.cycles <= 4 * ideal.cycles + 4
    report(rows, title="E12 — acknowledge-and-retry under congestion")
    ft = FatTree(64, UniversalCapacity(64, 16))
    m = uniform_random(64, 256, seed=1)
    benchmark(run_until_delivered, ft, m)


def test_pipelined_frame_time(report, benchmark):
    """With payload bits, the cycle time is path + frame (pipelining)."""
    rows = []
    n = 256
    ft = FatTree(n)
    m = random_permutation(n, seed=2)
    for payload in (0, 16, 64):
        r = run_delivery_cycle(ft, m, payload_bits=payload)
        rows.append(
            {
                "payload bits": payload,
                "wave ticks": r.wave_ticks,
                "cycle bit-time": r.cycle_bit_time(),
            }
        )
        assert r.cycle_bit_time() == r.wave_ticks + 1 + payload
    report(rows, title="E12 — bit-serial pipelining")
    benchmark(run_delivery_cycle, ft, m)
