"""E2 — Theorem 1: off-line scheduling within O(λ(M)·lg n).

Measures delivery cycles d against the load-factor lower bound λ(M) for
random and adversarial traffic across sizes.  The shape claims asserted:
d >= ceil(λ) always, d <= 2·ceil(λ)·lg n always, and the overhead d/λ
grows no faster than lg n.
"""

import math

import pytest

from repro.analysis import fit_loglog
from repro.core import (
    FatTree,
    UniversalCapacity,
    load_factor,
    schedule_theorem1,
    theorem1_cycle_bound,
)
from repro.workloads import bit_reversal, hotspot, uniform_random


def run_schedule_experiment(n, workload_name):
    ft = FatTree(n, UniversalCapacity(n, max(math.ceil(n ** (2 / 3)), 4)))
    if workload_name == "uniform":
        m = uniform_random(n, 8 * n, seed=n)
    elif workload_name == "hotspot":
        m = hotspot(n, 2 * n, fraction=0.3, seed=n)
    else:
        m = bit_reversal(n)
    lam = load_factor(ft, m)
    sched = schedule_theorem1(ft, m)
    sched.validate(ft, m)
    return ft, lam, sched


@pytest.mark.parametrize("workload", ["uniform", "hotspot", "bit-reversal"])
def test_theorem1_bound_across_sizes(workload, report, benchmark):
    rows = []
    overheads = []
    sizes = [16, 64, 256, 1024]
    for n in sizes:
        ft, lam, sched = run_schedule_experiment(n, workload)
        bound = theorem1_cycle_bound(ft, lam)
        d = sched.num_cycles
        rows.append(
            {
                "n": n,
                "lg n": ft.depth,
                "λ(M)": lam,
                "d": d,
                "bound 2⌈λ⌉lg n": bound,
                "d/⌈λ⌉": d / max(1, math.ceil(lam)),
            }
        )
        assert d >= math.ceil(lam)
        assert d <= bound
        overheads.append(d / max(1.0, lam))
    report(rows, title=f"E2 / Theorem 1 — {workload} traffic")
    benchmark(run_schedule_experiment, 64, workload)
    # the overhead d/λ must stay within a constant of lg n
    for n, over in zip(sizes, overheads):
        assert over <= 2.5 * math.log2(n) + 2


def test_scheduler_throughput(benchmark):
    n = 256
    ft = FatTree(n, UniversalCapacity(n, 64))
    m = uniform_random(n, 4 * n, seed=0)
    benchmark(schedule_theorem1, ft, m)


def test_overhead_growth_is_logarithmic(report, benchmark):
    """Fitting d against λ·lg n over a 64x size sweep should give slope
    ~1 (linear in the bound), far from any polynomial in n."""
    xs, ys = [], []
    for n in (16, 32, 64, 128, 256, 512, 1024):
        ft, lam, sched = run_schedule_experiment(n, "uniform")
        xs.append(max(lam, 1.0) * ft.depth)
        ys.append(sched.num_cycles)
    fit = fit_loglog(xs, ys)
    report(
        [{"fit d ~ (λ·lg n)^s": fit.slope, "r²": fit.r_squared}],
        title="E2 — scheduling overhead growth",
    )
    assert 0.5 <= fit.slope <= 1.35
    benchmark(run_schedule_experiment, 128, "uniform")
