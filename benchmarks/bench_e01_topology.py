"""E1 — Fig. 1: the organisation of universal fat-trees.

Regenerates the structural picture: channel capacities per level for a
sweep of (n, w), the two growth regimes (capacities double per level near
the leaves, grow by ∛4 within 3·lg(n/w) of the root), wire totals, and
the crossover level.
"""

import math

import pytest

from repro.core import FatTree, UniversalCapacity


def build_fattree(n, w):
    ft = FatTree(n, UniversalCapacity(n, w))
    return ft, ft.total_wires()


@pytest.mark.parametrize("n", [64, 256, 1024, 4096])
def test_topology_structure(n, report, benchmark):
    rows = []
    for w in sorted({math.ceil(n ** (2 / 3)), math.ceil(n ** (5 / 6)), n}):
        ft, wires = build_fattree(n, w)
        caps = ft.capacity.caps()
        rows.append(
            {
                "n": n,
                "w": w,
                "crossover 3·lg(n/w)": ft.capacity.crossover_level,
                "caps (root..)": "/".join(str(c) for c in caps[:5]) + "…",
                "leaf cap": caps[-1],
                "total wires": wires,
            }
        )
        # shape: every capacity profile starts at w, ends at 1,
        # non-increasing downward
        assert caps[0] == w and caps[-1] == 1
        assert all(a >= b for a, b in zip(caps, caps[1:]))
        # growth regimes: below the crossover the ratio per level is ~2;
        # above it, ~4^(1/3)
        k_star = ft.capacity.crossover_level
        for k in range(max(1, k_star), ft.depth):
            assert caps[k] <= 2 * caps[k + 1] + 1  # doubling regime
        for k in range(0, max(0, k_star - 1)):
            ratio = caps[k] / caps[k + 1]
            assert ratio <= 2 ** (2 / 3) * 1.3  # ∛4 regime (ceil slack)
    report(rows, title=f"E1 / Fig. 1 — universal fat-tree structure (n = {n})")
    benchmark(build_fattree, n, n)
