"""E11 — §IV concentrators: the (r, s, α) property and O(m) hardware.

Measured claims for the Pippenger-style random partial concentrators:
degree bounds 6/9 hold by construction; the α = 3/4 guarantee holds on
every sampled input set across sizes; components grow linearly in r
(slope 1 in the fit); cascades reach constant ratios in constant depth.
"""

import numpy as np
import pytest

from repro.analysis import fit_loglog
from repro.hardware import (
    CascadedConcentrator,
    PartialConcentrator,
    PIPPENGER_INPUT_DEGREE,
    PIPPENGER_OUTPUT_DEGREE,
)


def alpha_success_rate(pc, trials=60):
    k = pc.guaranteed()
    hits = 0
    for t in range(trials):
        rng = np.random.default_rng(t)
        active = rng.choice(pc.r, size=k, replace=False).tolist()
        hits += pc.satisfies_alpha_for(active)
    return hits / trials


def test_alpha_property_across_sizes(report, benchmark):
    rows = []
    comps = []
    sizes = [24, 48, 96, 192, 384, 768]
    for r in sizes:
        pc = PartialConcentrator(r, rng=r)
        rate = alpha_success_rate(pc)
        rows.append(
            {
                "r": r,
                "s=⌈2r/3⌉": pc.s,
                "in-deg": pc.input_degree(),
                "out-deg": pc.output_degree(),
                "α·s guaranteed": pc.guaranteed(),
                "success rate": rate,
                "components": pc.components(),
            }
        )
        assert pc.input_degree() <= PIPPENGER_INPUT_DEGREE
        assert pc.output_degree() <= PIPPENGER_OUTPUT_DEGREE
        assert rate == 1.0, f"α property violated at r={r}"
        comps.append(pc.components())
    report(rows, title="E11 / §IV — (r, 2r/3, 3/4) partial concentrators")
    fit = fit_loglog(sizes, comps)
    assert 0.9 <= fit.slope <= 1.1, "components not linear in r"
    benchmark(PartialConcentrator, 96, rng=0)


def test_cascade_constant_depth(report, benchmark):
    rows = []
    for r in (48, 96, 384, 768):
        cc = CascadedConcentrator(r, r // 4, rng=r)
        rows.append(
            {
                "r": r,
                "target": r // 4,
                "stages": cc.depth,
                "final width": cc.s,
                "components": cc.components(),
            }
        )
    report(rows, title="E11 — cascades: 4x concentration in constant depth")
    depths = {row["stages"] for row in rows}
    assert len(depths) == 1  # constant depth across a 16x size sweep
    benchmark(CascadedConcentrator, 96, 24, rng=1)


def test_switch_setting_speed(benchmark):
    """Matching-based switch setting (the off-line path setup)."""
    pc = PartialConcentrator(384, rng=5)
    active = list(range(0, 384, 2))[: pc.guaranteed()]
    benchmark(pc.route, active)
